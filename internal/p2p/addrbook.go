// Package p2p implements a live TCP Perigee node: Bitcoin-style
// INV/GETDATA/BLOCK gossip over the wire protocol, address discovery, and
// the Perigee neighbor-update loop driven by real arrival timestamps.
//
// The package is the "deployment" counterpart of the simulator: the same
// scoring code (internal/core) ranks peers using timestamps measured on
// real connections. Artificial per-peer latency can be injected to run
// planet-scale experiments on a single machine (see cmd/perigee-cluster),
// and deterministic connection faults can be injected through a
// faults.Plan for chaos experiments.
package p2p

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Address-book policy defaults; see BookConfig.
const (
	DefaultBookCap       = 1024
	DefaultDialBudget    = 8
	DefaultBackoffBase   = 500 * time.Millisecond
	DefaultBackoffMax    = 2 * time.Minute
	DefaultBanThreshold  = 100
	DefaultBanDuration   = 10 * time.Minute
	DefaultDecayHalfLife = 5 * time.Minute
)

// BookConfig tunes the address book's health, backoff, and ban policy.
// The zero value resolves every field to the package defaults.
type BookConfig struct {
	// Cap bounds the number of stored addresses; adding beyond it evicts
	// the unhealthiest entry (banned first, then most failures, then
	// least recently seen). Default 1024.
	Cap int
	// DialBudget is the consecutive-dial-failure budget: an address
	// failing this many times in a row is evicted (it can return via
	// gossip, re-entering with a clean slate). Default 8.
	DialBudget int
	// BackoffBase is the delay before the first redial of a failed
	// address; each further failure doubles it (with deterministic
	// per-address jitter) up to BackoffMax. Defaults 500ms / 2min.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BanThreshold is the decayed misbehavior score at which a peer is
	// banned; BanDuration is how long the ban lasts. Defaults 100 / 10min.
	BanThreshold float64
	BanDuration  time.Duration
	// DecayHalfLife halves a peer's misbehavior score per elapsed
	// interval, so transient faults heal. Default 5min.
	DecayHalfLife time.Duration
}

func (c BookConfig) withDefaults() BookConfig {
	if c.Cap <= 0 {
		c.Cap = DefaultBookCap
	}
	if c.DialBudget <= 0 {
		c.DialBudget = DefaultDialBudget
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.BanThreshold <= 0 {
		c.BanThreshold = DefaultBanThreshold
	}
	if c.BanDuration <= 0 {
		c.BanDuration = DefaultBanDuration
	}
	if c.DecayHalfLife <= 0 {
		c.DecayHalfLife = DefaultDecayHalfLife
	}
	return c
}

// addrEntry is one address's health record.
type addrEntry struct {
	Addr        string    `json:"addr"`
	Added       time.Time `json:"added"`
	LastSeen    time.Time `json:"last_seen"`
	LastSuccess time.Time `json:"last_success,omitempty"`
	Fails       int       `json:"fails,omitempty"`
	NextDial    time.Time `json:"next_dial,omitempty"`
	BanUntil    time.Time `json:"ban_until,omitempty"`
	// Verified marks an address we have successfully dialed and
	// handshaked at least once (a "tried" entry in Bitcoin's addrman
	// terms) as opposed to unconfirmed gossip rumor. Verified entries are
	// never evicted to make room for rumor.
	Verified bool `json:"verified,omitempty"`
}

// idScore tracks one peer identity's decaying misbehavior score.
type idScore struct {
	Score    float64   `json:"score"`
	At       time.Time `json:"at"` // last decay checkpoint
	BanUntil time.Time `json:"ban_until,omitempty"`
}

// AddrBook is the node's persistent peer-health registry (its addrMan,
// §2.1): a capped set of known addresses with per-address dial health and
// exponential backoff, plus per-identity misbehavior scores feeding the
// ban policy. All methods are safe for concurrent use.
type AddrBook struct {
	cfg BookConfig
	now func() time.Time

	mu    sync.RWMutex
	addrs map[string]*addrEntry
	self  map[string]bool
	ids   map[uint64]*idScore
}

// NewAddrBook returns an empty address book with default policy.
func NewAddrBook() *AddrBook { return NewAddrBookWith(BookConfig{}) }

// NewAddrBookWith returns an empty address book with the given policy;
// zero fields take the defaults.
func NewAddrBookWith(cfg BookConfig) *AddrBook {
	return &AddrBook{
		cfg:   cfg.withDefaults(),
		now:   time.Now,
		addrs: make(map[string]*addrEntry),
		self:  make(map[string]bool),
		ids:   make(map[uint64]*idScore),
	}
}

// MarkSelf registers the node's own addresses: they are never stored and
// are dropped if already present, so addr-gossip echoing the node back to
// itself cannot waste book slots or dial attempts.
func (b *AddrBook) MarkSelf(addrs ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, a := range addrs {
		if a == "" {
			continue
		}
		b.self[a] = true
		delete(b.addrs, a)
	}
}

// Add records addresses; empty strings and the node's own addresses are
// ignored. When the book is at capacity the unhealthiest entry is evicted
// to make room — a single gossiping peer can no longer grow the book
// without bound.
func (b *AddrBook) Add(addrs ...string) {
	for _, a := range addrs {
		b.AddSeen(a, 0)
	}
}

// AddSeen records one gossiped address together with the sender's claimed
// age: LastSeen is backdated by age, so a stale rumor enters the book less
// healthy than a fresh one. Reports whether the address was newly admitted
// (false for duplicates, self addresses, and rejections at capacity). An
// unverified newcomer can evict other rumor but never a dial-verified
// entry — a flood of fabricated addresses cannot push out addresses we
// know are real.
func (b *AddrBook) AddSeen(addr string, age time.Duration) bool {
	now := b.now()
	seen := now.Add(-age)
	b.mu.Lock()
	defer b.mu.Unlock()
	if addr == "" || b.self[addr] {
		return false
	}
	if e, ok := b.addrs[addr]; ok {
		if seen.After(e.LastSeen) {
			e.LastSeen = seen
		}
		return false
	}
	if len(b.addrs) >= b.cfg.Cap {
		if !b.evictLocked(now, false) {
			return false // everything else is healthier than a newcomer
		}
	}
	b.addrs[addr] = &addrEntry{Addr: addr, Added: now, LastSeen: seen}
	return true
}

// evictLocked removes the unhealthiest entry: banned first, then most
// consecutive failures, then least recently seen. Unless includeVerified
// is set, dial-verified entries are exempt — rumor is only allowed to
// displace rumor. Reports whether a slot was freed.
func (b *AddrBook) evictLocked(now time.Time, includeVerified bool) bool {
	var victim *addrEntry
	worse := func(e, v *addrEntry) bool {
		eBanned, vBanned := now.Before(e.BanUntil), now.Before(v.BanUntil)
		if eBanned != vBanned {
			return eBanned
		}
		if e.Verified != v.Verified {
			return !e.Verified
		}
		if e.Fails != v.Fails {
			return e.Fails > v.Fails
		}
		return e.LastSeen.Before(v.LastSeen)
	}
	for _, e := range b.addrs {
		if e.Verified && !includeVerified && !now.Before(e.BanUntil) {
			continue // verified and not banned: protected from rumor
		}
		if victim == nil || worse(e, victim) {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	delete(b.addrs, victim.Addr)
	return true
}

// Remove deletes an address.
func (b *AddrBook) Remove(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.addrs, addr)
}

// Len returns the number of known addresses.
func (b *AddrBook) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.addrs)
}

// All returns every known address, sorted for deterministic iteration.
func (b *AddrBook) All() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.addrs))
	for a := range b.addrs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Dialable returns the addresses currently worth dialing: not banned and
// past their backoff gate, sorted for deterministic iteration.
func (b *AddrBook) Dialable() []string {
	now := b.now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.addrs))
	for a, e := range b.addrs {
		if now.Before(e.NextDial) || now.Before(e.BanUntil) {
			continue
		}
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// EarliestGated returns the unbanned address (not in exclude) whose
// backoff gate opens soonest — the pool a starved node overrides backoff
// from when nothing is ordinarily dialable. Ties break on the address so
// replays agree.
func (b *AddrBook) EarliestGated(exclude map[string]bool) (string, bool) {
	now := b.now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	var best string
	var bestAt time.Time
	found := false
	for a, e := range b.addrs {
		if exclude[a] || now.Before(e.BanUntil) {
			continue
		}
		if !found || e.NextDial.Before(bestAt) || (e.NextDial.Equal(bestAt) && a < best) {
			best, bestAt, found = a, e.NextDial, true
		}
	}
	return best, found
}

// Contains reports whether addr is known.
func (b *AddrBook) Contains(addr string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.addrs[addr]
	return ok
}

// DialFailed records a failed dial or handshake to addr: the failure
// count grows, the next dial is pushed out exponentially (with
// deterministic per-(addr, fails) jitter so replays agree), and once the
// consecutive-failure budget is spent the address is evicted. Reports
// whether the address was evicted.
func (b *AddrBook) DialFailed(addr string) (evicted bool) {
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.addrs[addr]
	if !ok {
		return false
	}
	e.Fails++
	if e.Fails >= b.cfg.DialBudget {
		delete(b.addrs, addr)
		return true
	}
	backoff := b.cfg.BackoffBase << (e.Fails - 1)
	if backoff > b.cfg.BackoffMax || backoff <= 0 {
		backoff = b.cfg.BackoffMax
	}
	// Deterministic jitter in [0.75, 1.25): stateless, so a replayed run
	// schedules identical retry times.
	backoff = time.Duration(float64(backoff) * (0.75 + 0.5*hashFrac(addr, e.Fails)))
	e.NextDial = now.Add(backoff)
	return false
}

// NextDialIn reports how long until addr may be dialed again (zero when
// dialable now or unknown) — exposed for tests and diagnostics.
func (b *AddrBook) NextDialIn(addr string) time.Duration {
	now := b.now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.addrs[addr]
	if !ok {
		return 0
	}
	gate := e.NextDial
	if e.BanUntil.After(gate) {
		gate = e.BanUntil
	}
	if d := gate.Sub(now); d > 0 {
		return d
	}
	return 0
}

// Fails returns addr's consecutive dial-failure count.
func (b *AddrBook) Fails(addr string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if e, ok := b.addrs[addr]; ok {
		return e.Fails
	}
	return 0
}

// DialSucceeded records a completed dial+handshake: the failure count and
// backoff gate reset, the entry is marked dial-verified, and the address
// is (re-)added if gossip hadn't delivered it yet. A verified newcomer
// evicts rumor first and only displaces another verified entry when no
// rumor remains.
func (b *AddrBook) DialSucceeded(addr string) {
	if addr == "" {
		return
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.self[addr] {
		return
	}
	e, ok := b.addrs[addr]
	if !ok {
		if len(b.addrs) >= b.cfg.Cap && !b.evictLocked(now, false) && !b.evictLocked(now, true) {
			return
		}
		e = &addrEntry{Addr: addr, Added: now}
		b.addrs[addr] = e
	}
	e.Fails = 0
	e.NextDial = time.Time{}
	e.LastSeen = now
	e.LastSuccess = now
	e.Verified = true
}

// Verified reports whether addr is known and dial-verified.
func (b *AddrBook) Verified(addr string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.addrs[addr]
	return ok && e.Verified
}

// VerifiedCount returns the number of dial-verified addresses.
func (b *AddrBook) VerifiedCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, e := range b.addrs {
		if e.Verified {
			n++
		}
	}
	return n
}

// GossipAddr is one address eligible for an ADDR response, with the time
// elapsed since this node last had evidence of it.
type GossipAddr struct {
	Addr string
	Age  time.Duration
}

// Gossipable returns the addresses eligible for an ADDR response — every
// known, non-banned address except those in exclude — with their ages,
// sorted by address for deterministic iteration. Sampling (shuffling,
// truncation) is the caller's job; the book only guarantees banned and
// excluded entries never leak into gossip.
func (b *AddrBook) Gossipable(exclude ...string) []GossipAddr {
	now := b.now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]GossipAddr, 0, len(b.addrs))
	for a, e := range b.addrs {
		if now.Before(e.BanUntil) {
			continue
		}
		skip := false
		for _, x := range exclude {
			if a == x {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		age := now.Sub(e.LastSeen)
		if age < 0 {
			age = 0
		}
		out = append(out, GossipAddr{Addr: a, Age: age})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FeelerCandidates returns the never-verified addresses that are
// currently dialable (not banned, past backoff), sorted for deterministic
// iteration — the pool a feeler connection picks from.
func (b *AddrBook) FeelerCandidates() []string {
	now := b.now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0)
	for a, e := range b.addrs {
		if e.Verified || now.Before(e.NextDial) || now.Before(e.BanUntil) {
			continue
		}
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// decayedLocked returns the identity's score decayed to now.
func (b *AddrBook) decayedLocked(s *idScore, now time.Time) float64 {
	if s.Score <= 0 {
		return 0
	}
	elapsed := now.Sub(s.At)
	if elapsed <= 0 {
		return s.Score
	}
	halves := float64(elapsed) / float64(b.cfg.DecayHalfLife)
	return s.Score * math.Exp2(-halves)
}

// Misbehave charges points of misbehavior to a peer identity, decaying
// the existing score first. When the score crosses the ban threshold the
// identity is banned for the configured duration and — when its listening
// address is known — the address is gated too, so banned peers are both
// refused on accept and skipped on dial. Reports whether the peer is now
// banned.
func (b *AddrBook) Misbehave(id uint64, listenAddr string, points float64) (banned bool) {
	if points <= 0 {
		return b.IDBanned(id)
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.ids[id]
	if !ok {
		s = &idScore{At: now}
		b.ids[id] = s
	}
	s.Score = b.decayedLocked(s, now) + points
	s.At = now
	if s.Score >= b.cfg.BanThreshold {
		s.BanUntil = now.Add(b.cfg.BanDuration)
		banned = true
		if e, ok := b.addrs[listenAddr]; ok {
			e.BanUntil = s.BanUntil
		}
	}
	return banned
}

// Score returns the identity's current (decayed) misbehavior score.
func (b *AddrBook) Score(id uint64) float64 {
	now := b.now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	s, ok := b.ids[id]
	if !ok {
		return 0
	}
	return b.decayedLocked(s, now)
}

// IDBanned reports whether the peer identity is currently banned.
func (b *AddrBook) IDBanned(id uint64) bool {
	now := b.now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	s, ok := b.ids[id]
	return ok && now.Before(s.BanUntil)
}

// AddrBanned reports whether the address is currently gated by a ban.
func (b *AddrBook) AddrBanned(addr string) bool {
	now := b.now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.addrs[addr]
	return ok && now.Before(e.BanUntil)
}

// BannedIDs returns the currently banned identities, sorted.
func (b *AddrBook) BannedIDs() []uint64 {
	now := b.now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []uint64
	for id, s := range b.ids {
		if now.Before(s.BanUntil) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bookSnapshot is the book's JSON persistence shape.
type bookSnapshot struct {
	Addrs []addrEntry         `json:"addrs"`
	IDs   map[string]*idScore `json:"ids,omitempty"`
}

// Save writes the book (addresses, health, bans) as JSON to path,
// atomically via a temp-file rename.
func (b *AddrBook) Save(path string) error {
	b.mu.RLock()
	snap := bookSnapshot{IDs: make(map[string]*idScore, len(b.ids))}
	for _, e := range b.addrs {
		snap.Addrs = append(snap.Addrs, *e)
	}
	for id, s := range b.ids {
		cp := *s
		snap.IDs[fmt.Sprintf("%016x", id)] = &cp
	}
	b.mu.RUnlock()
	sort.Slice(snap.Addrs, func(i, j int) bool { return snap.Addrs[i].Addr < snap.Addrs[j].Addr })
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("p2p: encoding address book: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return fmt.Errorf("p2p: writing address book: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load merges a saved book into this one. Missing files are not an
// error — a first run simply starts empty.
func (b *AddrBook) Load(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("p2p: reading address book: %w", err)
	}
	var snap bookSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("p2p: decoding address book %s: %w", path, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range snap.Addrs {
		e := snap.Addrs[i]
		if e.Addr == "" || b.self[e.Addr] {
			continue
		}
		if len(b.addrs) >= b.cfg.Cap {
			break
		}
		if _, ok := b.addrs[e.Addr]; !ok {
			cp := e
			b.addrs[e.Addr] = &cp
		}
	}
	for key, s := range snap.IDs {
		var id uint64
		if _, err := fmt.Sscanf(key, "%x", &id); err != nil || id == 0 {
			continue
		}
		if _, ok := b.ids[id]; !ok && s != nil {
			cp := *s
			b.ids[id] = &cp
		}
	}
	return nil
}

// hashFrac maps (addr, n) to a deterministic value in [0, 1).
func hashFrac(addr string, n int) float64 {
	h := sha256.New()
	h.Write([]byte(addr))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	var digest [32]byte
	h.Sum(digest[:0])
	return float64(binary.LittleEndian.Uint64(digest[:8])>>11) / float64(1<<53)
}
