package p2p

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/faults"
	"github.com/perigee-net/perigee/internal/wire"
)

// chaosNode builds a node tuned for fault injection: short idle probes,
// fast redial, and bounded drain so tests turn around quickly.
func chaosNode(t *testing.T, seed uint64, plan faults.Plan, mutate func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Seed:            seed,
		ListenAddr:      "127.0.0.1:0",
		Genesis:         testGenesis(),
		OutDegree:       3,
		Explore:         1,
		Faults:          plan,
		ReadIdleTimeout: 300 * time.Millisecond,
		WriteTimeout:    500 * time.Millisecond,
		RedialInterval:  100 * time.Millisecond,
		DrainTimeout:    200 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

// TestChaosClusterSurvivesAndRecovers is the tentpole chaos test: an
// 8-node cluster under a 25% mixed fault plan (injected dial failures,
// resets, stalls, slow-loris reads, message drops) must keep propagating
// blocks, complete every Perigee round, recover its outbound degree, and
// leak no goroutines after a full drain.
func TestChaosClusterSurvivesAndRecovers(t *testing.T) {
	base := runtime.NumGoroutine()
	plan := faults.Mixed(99, 0.25)
	const N = 8
	nodes := make([]*Node, N)
	for i := range nodes {
		nodes[i] = chaosNode(t, uint64(9000+i), plan, nil)
	}
	// Full-mesh address seeding plus three initial dials per node; some
	// dials fail by injection — that is the point.
	for i, n := range nodes {
		for j, m := range nodes {
			if i != j {
				n.book.Add(m.Addr())
			}
		}
	}
	for i, n := range nodes {
		for k := 1; k <= 3; k++ {
			_ = n.Connect(nodes[(i+k)%N].Addr())
		}
	}

	mineAndSpread := func(tag string, count int, upto uint64) {
		for b := 0; b < count; b++ {
			if _, err := nodes[0].MineBlock([][]byte{[]byte(fmt.Sprintf("%s-%d", tag, b))}); err != nil {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		// A majority must track the chain promptly even mid-fault;
		// eclipsed nodes catch up below once redial heals them.
		waitFor(t, "majority propagation", 15*time.Second, func() bool {
			reached := 0
			for _, n := range nodes {
				if n.Store().Height() >= upto {
					reached++
				}
			}
			return reached >= N-2
		})
	}

	mineAndSpread("wave1", 5, 5)
	for i, n := range nodes {
		if _, err := n.PerigeeRound(); err != nil {
			t.Fatalf("node %d round 1: %v", i, err)
		}
	}
	mineAndSpread("wave2", 3, 8)
	for i, n := range nodes {
		if _, err := n.PerigeeRound(); err != nil {
			t.Fatalf("node %d round 2: %v", i, err)
		}
	}

	// The plan must have actually bitten.
	injected := 0
	for _, n := range nodes {
		r := n.Resilience()
		injected += r.FaultedConns + r.FaultedDials
	}
	if injected == 0 {
		t.Fatal("25% fault plan injected nothing across 8 nodes")
	}
	// Out-degree recovers: rounds floor their dial target at OutDegree
	// and the maintenance loop redials between rounds.
	waitFor(t, "outbound degree recovery", 10*time.Second, func() bool {
		for _, n := range nodes {
			if n.OutboundCount() < 2 {
				return false
			}
		}
		return true
	})
	// Eventually every node holds the chain.
	waitFor(t, "full catch-up", 15*time.Second, func() bool {
		for _, n := range nodes {
			if n.Store().Height() < 8 {
				return false
			}
		}
		return true
	})

	// Drain: stop everything and verify no goroutine outlives its node.
	for _, n := range nodes {
		n.Stop()
	}
	waitFor(t, "goroutines reclaimed", 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= base+2
	})
}

// TestChaosVerdictReplayDeterminism: two nodes built from the same seed,
// consulting the same fault plan through the real Connect path, receive
// bit-for-bit identical verdict streams. Keep/drop decisions are a pure
// function of observations and the seeded selector stream (covered by
// the sim/live parity tests), so identical fault verdicts are the
// missing half of "same plan + same seed => same decisions".
func TestChaosVerdictReplayDeterminism(t *testing.T) {
	run := func() []string {
		rec := faults.NewRecorder(faults.Mixed(42, 0.5))
		cfg := Config{Seed: 777, Genesis: testGenesis(), Faults: rec}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		// Ports from the discard range: real dials fail fast, injected
		// dial failures never reach the network at all.
		addrs := []string{"127.0.0.1:9", "127.0.0.1:11", "127.0.0.1:13"}
		for attempt := 0; attempt < 3; attempt++ {
			for _, a := range addrs {
				_ = n.Connect(a)
			}
		}
		return rec.Log()
	}
	first, second := run(), run()
	if len(first) != 9 {
		t.Fatalf("recorded %d verdicts, want 9", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("verdict %d diverged between identical runs:\n%s\n%s", i, first[i], second[i])
		}
	}
}

// TestChaosDialFailuresFeedBackoff: injected dial failures are recorded
// against the address book exactly like real ones — failures accumulate
// and the address backs off instead of hot-looping.
func TestChaosDialFailuresFeedBackoff(t *testing.T) {
	cfg := Config{Seed: 5, Genesis: testGenesis(), Faults: faults.DialFailures(1, 1)}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	addr := "127.0.0.1:9"
	n.book.Add(addr)
	for i := 0; i < 3; i++ {
		if err := n.Connect(addr); err == nil {
			t.Fatal("dial succeeded under a 100% dial-failure plan")
		}
	}
	if got := n.book.Fails(addr); got != 3 {
		t.Fatalf("book recorded %d failures, want 3", got)
	}
	if n.book.NextDialIn(addr) <= 0 {
		t.Fatal("no backoff gate after repeated injected failures")
	}
	r := n.Resilience()
	if r.FaultedDials != 3 || r.DialFailures != 3 {
		t.Fatalf("stats = %+v, want 3 faulted dials and 3 recorded failures", r)
	}
}

// TestChaosAbusivePeerBanned: a peer repeatedly sending corrupt frames
// accumulates misbehavior until it is banned; once banned, even a clean
// handshake is refused.
func TestChaosAbusivePeerBanned(t *testing.T) {
	node := startNode(t, 300, func(c *Config) {
		c.Book = BookConfig{BanThreshold: 60, BanDuration: time.Minute}
	})
	const abuser = uint64(0xBAD0001)
	garbage := []byte("this is not a perigee frame, not even close......")
	for i := 0; i < 2; i++ {
		conn := rawDial(t, node, abuser)
		if _, err := conn.Write(garbage); err != nil {
			t.Fatal(err)
		}
		// The node charges the violation and disconnects us.
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			if _, err := wire.Read(conn); err != nil {
				break
			}
		}
		waitFor(t, "abusive peer removed", 2*time.Second, func() bool {
			return len(node.Peers()) == 0
		})
	}
	if !node.Book().IDBanned(abuser) {
		t.Fatal("abuser not banned after repeated corrupt frames")
	}
	if got := node.Resilience().Bans; got != 1 {
		t.Fatalf("Bans = %d, want 1", got)
	}
	// A banned identity is refused right after the handshake reveals it.
	conn := rawDial(t, node, abuser)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := wire.Read(conn); err != nil {
			break
		}
	}
	waitFor(t, "banned peer refused", 2*time.Second, func() bool {
		return len(node.Peers()) == 0 && node.Resilience().BannedRefused >= 1
	})
}

// TestChaosIdleStallReclaimed: a silent connection is probed once, then
// disconnected — the machinery that reclaims stalled and half-open
// connections.
func TestChaosIdleStallReclaimed(t *testing.T) {
	node := startNode(t, 301, func(c *Config) {
		c.ReadIdleTimeout = 150 * time.Millisecond
	})
	conn := rawDial(t, node, 0xD1E)
	// First idle interval: the node probes instead of dropping us.
	readUntil[*wire.Ping](t, conn)
	if len(node.Peers()) != 1 {
		t.Fatal("peer dropped at first idle interval instead of probed")
	}
	// Stay silent through the second interval: now we must be dropped.
	waitFor(t, "idle peer dropped", 2*time.Second, func() bool {
		return len(node.Peers()) == 0
	})
	_ = conn.Close()
}

// TestPeerSlowConsumerDisconnects: a peer whose queue stays full for the
// configured budget of consecutive sends is cut off, and the slow-close
// hook fires exactly once.
func TestPeerSlowConsumerDisconnects(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	p := newPeer(1, Inbound, a, "", 0)
	p.maxFullDrops = 3
	slow := 0
	p.onSlowClose = func() { slow++ }
	// No writeLoop: the queue fills and stays full.
	for i := 0; i < peerSendBuffer; i++ {
		if !p.send(&wire.GetAddr{}) {
			t.Fatalf("send %d failed with queue not yet full", i)
		}
	}
	for i := 0; i < 3; i++ {
		p.send(&wire.GetAddr{})
	}
	select {
	case <-p.done:
	default:
		t.Fatal("peer not closed after exhausting its full-queue budget")
	}
	if slow != 1 {
		t.Fatalf("slow-close hook fired %d times, want 1", slow)
	}
	if p.send(&wire.GetAddr{}) {
		t.Fatal("send succeeded on a closed peer")
	}
}

// TestPeerDropNthFault: the send-path half of a Drop verdict silently
// discards every Nth message while reporting success.
func TestPeerDropNthFault(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	p := newPeer(1, Outbound, a, "", 0)
	p.dropNth = 2
	for i := 0; i < 6; i++ {
		if !p.send(&wire.Ping{Nonce: uint64(i)}) {
			t.Fatalf("send %d reported failure", i)
		}
	}
	if got := len(p.sendCh); got != 3 {
		t.Fatalf("%d messages queued, want 3 (every 2nd dropped)", got)
	}
}

// TestChaosSubsetConformance is the paper-facing chaos conformance test:
// a hub starting from an all-slow outbound set, under a 20% mixed fault
// plan, must improve its p90 block-delivery latency round-over-round as
// Subset selection evicts slow (and stalled) peers in favor of fast
// ones. Latency structure comes from injected send delays on the slow
// relays, so the separation (~100ms per hop) dwarfs scheduler noise.
func TestChaosSubsetConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos conformance is a long test")
	}
	miner := startNode(t, 400, nil)
	var fast, slow []*Node
	for i := 0; i < 3; i++ {
		fast = append(fast, startNode(t, uint64(410+i), nil))
		slow = append(slow, startNode(t, uint64(420+i), func(c *Config) {
			c.PeerDelay = func(uint64) time.Duration { return 100 * time.Millisecond }
		}))
	}
	relays := append(append([]*Node{}, fast...), slow...)
	for _, r := range relays {
		if err := miner.Connect(r.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	hub := chaosNode(t, 430, faults.Mixed(7, 0.2), func(c *Config) {
		c.OutDegree = 3
		c.Explore = 1
		c.ReadIdleTimeout = 250 * time.Millisecond
	})
	for _, r := range relays {
		hub.book.Add(r.Addr())
	}
	// Force the worst initial topology: outbound all-slow. Injected dial
	// failures may refuse some attempts; retry — backoff is bookkeeping,
	// not a Connect gate.
	for attempt := 0; attempt < 30 && hub.OutboundCount() < 3; attempt++ {
		for _, s := range slow {
			_ = hub.Connect(s.Addr())
		}
	}
	if hub.OutboundCount() < 3 {
		t.Fatalf("could not establish initial slow topology: outbound %d", hub.OutboundCount())
	}

	p90s := make([]time.Duration, 0, 3)
	for round := 1; round <= 3; round++ {
		lats := make([]time.Duration, 0, 6)
		for b := 0; b < 6; b++ {
			start := time.Now()
			blk, err := miner.MineBlock([][]byte{[]byte(fmt.Sprintf("r%d-b%d", round, b))})
			if err != nil {
				t.Fatal(err)
			}
			h := blk.Header.Hash()
			arrived := false
			for time.Since(start) < 10*time.Second {
				if hub.Store().Has(chain.Hash(h)) {
					arrived = true
					break
				}
				time.Sleep(time.Millisecond)
			}
			if !arrived {
				t.Fatalf("round %d block %d never reached the hub", round, b)
			}
			lats = append(lats, time.Since(start))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p90s = append(p90s, lats[len(lats)-1])
		if _, err := hub.PerigeeRound(); err != nil {
			t.Fatal(err)
		}
		// Let exploration dials and redial recovery settle.
		waitFor(t, "post-round outbound", 5*time.Second, func() bool {
			return hub.OutboundCount() >= 2
		})
		time.Sleep(100 * time.Millisecond)
	}
	t.Logf("p90 delivery latency by round: %v", p90s)
	if p90s[len(p90s)-1] >= p90s[0] {
		t.Fatalf("p90 did not improve under faults: first %v, last %v", p90s[0], p90s[len(p90s)-1])
	}
}
