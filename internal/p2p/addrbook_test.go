package p2p

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock drives an AddrBook through virtual time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockBook(cfg BookConfig) (*AddrBook, *fakeClock) {
	b := NewAddrBookWith(cfg)
	c := &fakeClock{t: time.Unix(1700000000, 0)}
	b.now = c.now
	return b, c
}

// TestBookCapEvictsUnhealthiest: the book is bounded, and the victim
// preference is banned > most-failed > least recently seen.
func TestBookCapEvictsUnhealthiest(t *testing.T) {
	b, c := newClockBook(BookConfig{Cap: 3})
	b.Add("a:1")
	c.advance(time.Second)
	b.Add("b:1")
	c.advance(time.Second)
	b.Add("c:1")
	// c:1 has a failure; it should be evicted before the merely-old a:1.
	b.DialFailed("c:1")
	b.Add("d:1")
	if b.Contains("c:1") {
		t.Fatal("failed entry survived eviction")
	}
	if !b.Contains("a:1") || !b.Contains("b:1") || !b.Contains("d:1") {
		t.Fatalf("wrong survivors: %v", b.All())
	}
	if b.Len() != 3 {
		t.Fatalf("book grew past cap: %d", b.Len())
	}
	// With equal health, the least recently seen entry goes.
	b.Add("e:1")
	if b.Contains("a:1") {
		t.Fatal("oldest entry survived over fresher ones")
	}
}

// TestBookIgnoresSelf: self-addresses are never stored, even when gossip
// echoes them back after MarkSelf.
func TestBookIgnoresSelf(t *testing.T) {
	b, _ := newClockBook(BookConfig{})
	b.Add("me:9")
	b.MarkSelf("me:9")
	if b.Contains("me:9") {
		t.Fatal("MarkSelf did not drop the stored self-address")
	}
	b.Add("me:9", "other:1")
	if b.Contains("me:9") {
		t.Fatal("self-address re-added by gossip")
	}
	if !b.Contains("other:1") {
		t.Fatal("legitimate address dropped")
	}
	b.DialSucceeded("me:9")
	if b.Contains("me:9") {
		t.Fatal("DialSucceeded stored a self-address")
	}
}

// TestBookBackoffAndBudget: failures push the next dial out
// exponentially, success resets, and the consecutive-failure budget
// evicts dead seeds.
func TestBookBackoffAndBudget(t *testing.T) {
	b, c := newClockBook(BookConfig{DialBudget: 4, BackoffBase: time.Second, BackoffMax: time.Hour})
	b.Add("seed:1")
	if got := b.Dialable(); len(got) != 1 {
		t.Fatalf("fresh address not dialable: %v", got)
	}
	var prev time.Duration
	for i := 1; i < 4; i++ {
		if evicted := b.DialFailed("seed:1"); evicted {
			t.Fatalf("evicted after %d failures, budget is 4", i)
		}
		next := b.NextDialIn("seed:1")
		if next <= 0 {
			t.Fatalf("failure %d left no backoff gate", i)
		}
		if next <= prev {
			t.Fatalf("backoff not growing: %v after %v", next, prev)
		}
		if len(b.Dialable()) != 0 {
			t.Fatal("backed-off address still dialable")
		}
		// The jittered gate stays within [0.75, 1.25) of the nominal 2^(i-1)s.
		nominal := time.Duration(1<<(i-1)) * time.Second
		if next < 3*nominal/4 || next >= 5*nominal/4 {
			t.Fatalf("failure %d backoff %v outside jitter band of %v", i, next, nominal)
		}
		prev = next
		c.advance(next)
		if len(b.Dialable()) != 1 {
			t.Fatal("address not dialable after backoff expired")
		}
	}
	// Success wipes the slate.
	b.DialSucceeded("seed:1")
	if b.Fails("seed:1") != 0 || b.NextDialIn("seed:1") != 0 {
		t.Fatal("success did not reset failure state")
	}
	// Budget exhaustion evicts.
	for i := 0; i < 4; i++ {
		b.DialFailed("seed:1")
	}
	if b.Contains("seed:1") {
		t.Fatal("address survived an exhausted failure budget")
	}
}

// TestBookMisbehaviorBanAndDecay: scores accumulate to a ban, bans gate
// both the identity and its address, and decay heals transient sinners.
func TestBookMisbehaviorBanAndDecay(t *testing.T) {
	b, c := newClockBook(BookConfig{
		BanThreshold:  100,
		BanDuration:   time.Minute,
		DecayHalfLife: time.Minute,
	})
	b.Add("bad:1")
	if banned := b.Misbehave(42, "bad:1", 60); banned {
		t.Fatal("banned below threshold")
	}
	if banned := b.Misbehave(42, "bad:1", 60); !banned {
		t.Fatal("not banned at 120 points")
	}
	if !b.IDBanned(42) || !b.AddrBanned("bad:1") {
		t.Fatal("ban did not gate both identity and address")
	}
	if got := b.BannedIDs(); len(got) != 1 || got[0] != 42 {
		t.Fatalf("BannedIDs = %v", got)
	}
	for _, a := range b.Dialable() {
		if a == "bad:1" {
			t.Fatal("banned address listed as dialable")
		}
	}
	// The ban expires with time and the decayed score has healed.
	c.advance(2 * time.Minute)
	if b.IDBanned(42) || b.AddrBanned("bad:1") {
		t.Fatal("ban did not expire")
	}
	if s := b.Score(42); s >= 60 {
		t.Fatalf("score %v did not decay (was 120, two half-lives passed)", s)
	}
	// A transient fault no longer tips a healed peer over.
	if banned := b.Misbehave(42, "bad:1", 40); banned {
		t.Fatal("healed peer re-banned by a small charge")
	}
}

// TestBookPersistence: Save/Load round-trips addresses, health, and bans.
func TestBookPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.json")
	b, _ := newClockBook(BookConfig{})
	b.Add("x:1", "y:2")
	b.DialFailed("x:1")
	b.Misbehave(7, "y:2", 500)
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	fresh, _ := newClockBook(BookConfig{})
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if !fresh.Contains("x:1") || !fresh.Contains("y:2") {
		t.Fatalf("addresses lost: %v", fresh.All())
	}
	if fresh.Fails("x:1") != 1 {
		t.Fatalf("failure count lost: %d", fresh.Fails("x:1"))
	}
	if !fresh.IDBanned(7) || !fresh.AddrBanned("y:2") {
		t.Fatal("ban state lost")
	}
	// Loading a missing file is a clean no-op.
	empty, _ := newClockBook(BookConfig{})
	if err := empty.Load(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatal("missing file produced entries")
	}
}

// TestBookGossipFloodBounded is the regression for the unbounded-book
// satellite: a single peer gossiping thousands of addresses cannot grow
// the book past its cap.
func TestBookGossipFloodBounded(t *testing.T) {
	b, _ := newClockBook(BookConfig{Cap: 50})
	for i := 0; i < 5000; i++ {
		b.Add(fmt.Sprintf("10.0.%d.%d:8333", i/256, i%256))
	}
	if b.Len() > 50 {
		t.Fatalf("book grew to %d entries past its cap of 50", b.Len())
	}
}

// TestBookEarliestGated: the desperation pool ranks unbanned addresses by
// how soon their backoff gate opens, skips exclusions and bans, and
// breaks timestamp ties on the address.
func TestBookEarliestGated(t *testing.T) {
	b, c := newClockBook(BookConfig{DialBudget: 8, BackoffBase: time.Second, BackoffMax: time.Hour, BanThreshold: 10})
	b.Add("deep:1")
	b.Add("shallow:1")
	b.Add("banned:1")
	for i := 0; i < 5; i++ {
		b.DialFailed("deep:1")
	}
	b.DialFailed("shallow:1")
	b.Misbehave(0xBAD, "banned:1", 100)
	if got, ok := b.EarliestGated(nil); !ok || got != "shallow:1" {
		t.Fatalf("earliest gated = %q, %v; want shallow:1", got, ok)
	}
	if got, ok := b.EarliestGated(map[string]bool{"shallow:1": true}); !ok || got != "deep:1" {
		t.Fatalf("earliest gated with exclusion = %q, %v; want deep:1", got, ok)
	}
	// Fresh entries share a zero NextDial: the address breaks the tie.
	b.Add("aa:1")
	b.Add("ab:1")
	if got, ok := b.EarliestGated(nil); !ok || got != "aa:1" {
		t.Fatalf("tie-break = %q, %v; want aa:1", got, ok)
	}
	_ = c
}
