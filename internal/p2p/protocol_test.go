package p2p

import (
	"net"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/wire"
)

// rawDial connects to a node with a plain TCP socket and completes the
// handshake manually, returning the connection for protocol-level tests.
func rawDial(t *testing.T, target *Node, nodeID uint64) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", target.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	local := &wire.Version{Protocol: wire.ProtocolVersion, NodeID: nodeID, Nonce: 1}
	if err := wire.Write(conn, local); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Read(conn); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*wire.Version); !ok {
		t.Fatalf("expected version, got %v", m.Type())
	}
	if err := wire.Write(conn, &wire.Verack{}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Read(conn); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*wire.Verack); !ok {
		t.Fatalf("expected verack, got %v", m.Type())
	}
	_ = conn.SetDeadline(time.Time{})
	return conn
}

// readUntil reads messages until one of type want arrives, skipping
// other traffic (GetAddr etc.).
func readUntil[T wire.Message](t *testing.T, conn net.Conn) T {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	for {
		m, err := wire.Read(conn)
		if err != nil {
			t.Fatalf("reading: %v", err)
		}
		if typed, ok := m.(T); ok {
			return typed
		}
	}
}

func TestPingPong(t *testing.T) {
	node := startNode(t, 100, nil)
	conn := rawDial(t, node, 0xABCD)
	if err := wire.Write(conn, &wire.Ping{Nonce: 77}); err != nil {
		t.Fatal(err)
	}
	pong := readUntil[*wire.Pong](t, conn)
	if pong.Nonce != 77 {
		t.Fatalf("pong nonce %d, want 77", pong.Nonce)
	}
}

func TestGetDataServesBlocks(t *testing.T) {
	node := startNode(t, 101, nil)
	blk, err := node.MineBlock([][]byte{[]byte("served")})
	if err != nil {
		t.Fatal(err)
	}
	conn := rawDial(t, node, 0xBEEF)
	if err := wire.Write(conn, &wire.GetData{Hashes: []chain.Hash{blk.Header.Hash()}}); err != nil {
		t.Fatal(err)
	}
	got := readUntil[*wire.Block](t, conn)
	if got.Block.Header.Hash() != blk.Header.Hash() {
		t.Fatal("served wrong block")
	}
}

func TestInvTriggersGetData(t *testing.T) {
	node := startNode(t, 102, nil)
	conn := rawDial(t, node, 0xCAFE)
	fake := chain.Hash{1, 2, 3}
	if err := wire.Write(conn, &wire.Inv{Hashes: []chain.Hash{fake}}); err != nil {
		t.Fatal(err)
	}
	gd := readUntil[*wire.GetData](t, conn)
	if len(gd.Hashes) != 1 || gd.Hashes[0] != fake {
		t.Fatalf("getdata %v, want the announced hash", gd.Hashes)
	}
	// Announcing the same unknown hash again immediately must not trigger
	// a duplicate request (2s request de-dup window).
	if err := wire.Write(conn, &wire.Inv{Hashes: []chain.Hash{fake}}); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, &wire.Ping{Nonce: 9}); err != nil {
		t.Fatal(err)
	}
	// The next relevant message must be the pong, not another getdata.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		m, err := wire.Read(conn)
		if err != nil {
			t.Fatalf("reading: %v", err)
		}
		switch msg := m.(type) {
		case *wire.GetData:
			t.Fatal("duplicate getdata for a recently-requested hash")
		case *wire.Pong:
			if msg.Nonce != 9 {
				t.Fatalf("wrong pong nonce %d", msg.Nonce)
			}
			return
		}
	}
}

func TestInvalidBlockRejected(t *testing.T) {
	node := startNode(t, 103, nil)
	conn := rawDial(t, node, 0xD00D)
	// A block with a bad Merkle commitment must not enter the store.
	bad := chain.NewBlock(testGenesis(), [][]byte{[]byte("x")}, time.Now(), 1)
	bad.Txs = [][]byte{[]byte("tampered")}
	if err := wire.Write(conn, &wire.Block{Block: bad}); err != nil {
		t.Fatal(err)
	}
	// Liveness check: the node keeps serving after the bad block.
	if err := wire.Write(conn, &wire.Ping{Nonce: 5}); err != nil {
		t.Fatal(err)
	}
	readUntil[*wire.Pong](t, conn)
	if node.Store().Len() != 1 {
		t.Fatalf("store has %d blocks, tampered block accepted", node.Store().Len())
	}
}

func TestPostHandshakeVersionDisconnects(t *testing.T) {
	node := startNode(t, 104, nil)
	conn := rawDial(t, node, 0xF00D)
	waitFor(t, "peer registered", time.Second, func() bool { return len(node.Peers()) == 1 })
	// Sending a second Version after the handshake is a protocol
	// violation; the node must drop the connection.
	if err := wire.Write(conn, &wire.Version{Protocol: 1, NodeID: 0xF00D}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "protocol violator dropped", 2*time.Second, func() bool {
		return len(node.Peers()) == 0
	})
}

func TestGarbageStreamDisconnects(t *testing.T) {
	node := startNode(t, 105, nil)
	conn := rawDial(t, node, 0xFEED)
	waitFor(t, "peer registered", time.Second, func() bool { return len(node.Peers()) == 1 })
	if _, err := conn.Write([]byte("this is not a framed message at all.....")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "garbage sender dropped", 2*time.Second, func() bool {
		return len(node.Peers()) == 0
	})
}

func TestWrongProtocolVersionRejected(t *testing.T) {
	node := startNode(t, 106, nil)
	conn, err := net.DialTimeout("tcp", node.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, &wire.Version{Protocol: 99, NodeID: 0x1234, Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	// The responder sends its version/verack then validates; either way
	// no peer may be registered.
	time.Sleep(100 * time.Millisecond)
	if len(node.Peers()) != 0 {
		t.Fatal("peer with wrong protocol version registered")
	}
}
