package p2p

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/faults"
	"github.com/perigee-net/perigee/internal/wire"
)

// rawDialAddr is rawDial with an advertised listening address, for tests
// exercising the requester-own-address exclusion and book admission.
func rawDialAddr(t *testing.T, target *Node, nodeID uint64, listenAddr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", target.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	local := &wire.Version{Protocol: wire.ProtocolVersion, NodeID: nodeID, ListenAddr: listenAddr, Nonce: 1}
	if err := wire.Write(conn, local); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Read(conn); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*wire.Version); !ok {
		t.Fatalf("expected version, got %v", m.Type())
	}
	if err := wire.Write(conn, &wire.Verack{}); err != nil {
		t.Fatal(err)
	}
	if m, err := wire.Read(conn); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*wire.Verack); !ok {
		t.Fatalf("expected verack, got %v", m.Type())
	}
	_ = conn.SetDeadline(time.Time{})
	return conn
}

// readAddrOfAtLeast reads messages until an ADDR with at least min
// entries arrives (skipping self-announces and unrelated traffic).
func readAddrOfAtLeast(t *testing.T, conn net.Conn, min int) *wire.Addr {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	for {
		m, err := wire.Read(conn)
		if err != nil {
			t.Fatalf("reading: %v", err)
		}
		if a, ok := m.(*wire.Addr); ok && len(a.Addrs) >= min {
			return a
		}
	}
}

// assertNoAddr asserts that no ADDR message arrives on conn within d.
func assertNoAddr(t *testing.T, conn net.Conn, d time.Duration) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(d))
	defer conn.SetReadDeadline(time.Time{})
	for {
		m, err := wire.Read(conn)
		if err != nil {
			return // deadline or closed: no ADDR arrived
		}
		if a, ok := m.(*wire.Addr); ok {
			t.Fatalf("unexpected ADDR of %d entries past the rate limit", len(a.Addrs))
		}
	}
}

// fillBook populates a node's book with n distinct valid addresses.
func fillBook(n *Node, count int) []string {
	addrs := make([]string, count)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("10.1.%d.%d:8333", i/250, i%250+1)
		n.Book().Add(addrs[i])
	}
	return addrs
}

// TestGetAddrSampleHardened pins the handleGetAddr fixes: the response is
// a seeded random sample, never the lexicographically sorted prefix of
// the book, never contains banned addresses or the requester's own
// address, and is bit-for-bit reproducible from the node seed.
func TestGetAddrSampleHardened(t *testing.T) {
	build := func() *Node {
		n := startNode(t, 7700, nil)
		fillBook(n, 300)
		return n
	}
	a := build()
	banned := "10.1.0.5:8333"
	a.Book().Misbehave(0xBAD, banned, 10*DefaultBanThreshold)
	if !a.Book().AddrBanned(banned) {
		t.Fatal("ban setup failed")
	}
	own := "10.9.9.9:4444"
	a.Book().Add(own) // the requester's address is known to the node

	conn := rawDialAddr(t, a, 0xD1A1, own)
	if err := wire.Write(conn, &wire.GetAddr{}); err != nil {
		t.Fatal(err)
	}
	sample := readAddrOfAtLeast(t, conn, 2)
	if len(sample.Addrs) > wire.MaxAddrs {
		t.Fatalf("sample of %d exceeds MaxAddrs", len(sample.Addrs))
	}
	sorted := a.Book().All()
	prefix := true
	for i, na := range sample.Addrs {
		if na.Addr == banned {
			t.Fatal("banned address leaked into ADDR response")
		}
		if na.Addr == own {
			t.Fatal("requester's own address echoed back")
		}
		if na.Addr != sorted[i] {
			prefix = false
		}
	}
	if prefix {
		t.Fatal("ADDR response is the sorted prefix of the book")
	}

	// Same seed, same book, same requester => identical sample: discovery
	// decisions replay bit-for-bit.
	b := build()
	b.Book().Misbehave(0xBAD, banned, 10*DefaultBanThreshold)
	b.Book().Add(own)
	conn2 := rawDialAddr(t, b, 0xD1A1, own)
	if err := wire.Write(conn2, &wire.GetAddr{}); err != nil {
		t.Fatal(err)
	}
	sample2 := readAddrOfAtLeast(t, conn2, 2)
	if len(sample.Addrs) != len(sample2.Addrs) {
		t.Fatalf("replayed sample size %d != %d", len(sample2.Addrs), len(sample.Addrs))
	}
	for i := range sample.Addrs {
		if sample.Addrs[i].Addr != sample2.Addrs[i].Addr {
			t.Fatalf("replayed sample diverges at %d: %s != %s",
				i, sample2.Addrs[i].Addr, sample.Addrs[i].Addr)
		}
	}
}

// TestGetAddrRateLimited pins the amplification fix: within one window
// only the first GETADDR is answered — spam past it yields zero
// additional ADDR bytes — and requests past the burst budget charge
// misbehavior points.
func TestGetAddrRateLimited(t *testing.T) {
	n := startNode(t, 7710, func(c *Config) {
		c.Discovery.GetAddrInterval = time.Hour
		c.Discovery.GetAddrBurst = 4
	})
	fillBook(n, 50)
	const spammer = 0x5BA3
	conn := rawDial(t, n, spammer)
	if err := wire.Write(conn, &wire.GetAddr{}); err != nil {
		t.Fatal(err)
	}
	first := readAddrOfAtLeast(t, conn, 2)
	if len(first.Addrs) == 0 {
		t.Fatal("first GETADDR unanswered")
	}
	// Requests 2..4: inside the window, inside the burst budget — ignored.
	for i := 0; i < 3; i++ {
		if err := wire.Write(conn, &wire.GetAddr{}); err != nil {
			t.Fatal(err)
		}
	}
	assertNoAddr(t, conn, 300*time.Millisecond)
	if got := n.Discovery().GetAddrThrottled; got < 3 {
		t.Fatalf("GetAddrThrottled = %d, want >= 3", got)
	}
	if s := n.Book().Score(spammer); s != 0 {
		t.Fatalf("in-budget requests charged %v points", s)
	}
	// Requests past the burst budget charge points.
	for i := 0; i < 3; i++ {
		if err := wire.Write(conn, &wire.GetAddr{}); err != nil {
			t.Fatal(err)
		}
	}
	assertNoAddr(t, conn, 300*time.Millisecond)
	waitFor(t, "spam charge", time.Second, func() bool {
		return n.Book().Score(spammer) > 0
	})
}

// TestAddrIngestionValidated pins the poisoning fixes on the receive
// path: syntactically invalid addresses never enter the book (and charge
// points), stale claims are dropped, valid fresh ones are admitted.
func TestAddrIngestionValidated(t *testing.T) {
	n := startNode(t, 7720, nil)
	const sender = 0xFEED
	conn := rawDial(t, n, sender)
	msg := &wire.Addr{Addrs: []wire.NetAddr{
		{Addr: "10.2.0.1:9000", AgeSec: 0},           // valid, fresh
		{Addr: "not an address", AgeSec: 0},          // invalid
		{Addr: "10.2.0.2:0", AgeSec: 0},              // port zero
		{Addr: ":9000", AgeSec: 0},                   // empty host
		{Addr: "10.2.0.3:9000", AgeSec: 4 * 60 * 60}, // stale (4h > 3h)
		{Addr: "bad_host:9000", AgeSec: 0},           // invalid label
		{Addr: "10.2.0.4:9000", AgeSec: 60},          // valid, 1min old
	}}
	if err := wire.Write(conn, msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "valid addrs admitted", time.Second, func() bool {
		return n.Book().Contains("10.2.0.1:9000") && n.Book().Contains("10.2.0.4:9000")
	})
	for _, bad := range []string{"not an address", "10.2.0.2:0", ":9000", "10.2.0.3:9000", "bad_host:9000"} {
		if n.Book().Contains(bad) {
			t.Fatalf("%q entered the book", bad)
		}
	}
	if s := n.Book().Score(sender); s == 0 {
		t.Fatal("invalid addrs went uncharged")
	}
	d := n.Discovery()
	if d.AddrsInvalid != 4 || d.AddrsStale != 1 || d.AddrsLearned != 2 {
		t.Fatalf("counters invalid=%d stale=%d learned=%d, want 4/1/2",
			d.AddrsInvalid, d.AddrsStale, d.AddrsLearned)
	}
}

// TestUnsolicitedAddrBudget pins the flood cap: entries beyond the
// solicited credit and the per-window unsolicited budget are dropped, and
// a fully over-budget message charges misbehavior.
func TestUnsolicitedAddrBudget(t *testing.T) {
	n := startNode(t, 7730, func(c *Config) {
		c.Discovery.GetAddrInterval = time.Hour
		c.Discovery.UnsolicitedBudget = 8
	})
	const flooder = 0xF100D
	conn := rawDial(t, n, flooder)
	// The node sent us one GETADDR at connect: its solicited credit covers
	// exactly wire.MaxAddrs entries. Burn it.
	burn := make([]wire.NetAddr, wire.MaxAddrs)
	for i := range burn {
		burn[i] = wire.NetAddr{Addr: fmt.Sprintf("10.3.%d.%d:8333", i/250, i%250+1)}
	}
	if err := wire.Write(conn, &wire.Addr{Addrs: burn}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "solicited batch admitted", time.Second, func() bool {
		return n.Book().Contains(burn[len(burn)-1].Addr)
	})
	// Now unsolicited: 20 entries against a budget of 8.
	extra := make([]wire.NetAddr, 20)
	for i := range extra {
		extra[i] = wire.NetAddr{Addr: fmt.Sprintf("10.4.0.%d:8333", i+1)}
	}
	if err := wire.Write(conn, &wire.Addr{Addrs: extra}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "budgeted prefix admitted", time.Second, func() bool {
		return n.Book().Contains(extra[7].Addr)
	})
	for _, na := range extra[8:] {
		if n.Book().Contains(na.Addr) {
			t.Fatalf("%s admitted past the unsolicited budget", na.Addr)
		}
	}
	if got := n.Discovery().UnsolicitedDropped; got != 12 {
		t.Fatalf("UnsolicitedDropped = %d, want 12", got)
	}
	// A third, fully over-budget message charges points.
	if err := wire.Write(conn, &wire.Addr{Addrs: extra}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flood charge", time.Second, func() bool {
		return n.Book().Score(flooder) > 0
	})
}

// TestRoundlessObservationBound pins the memory fix: a node that never
// runs Perigee rounds keeps order, firstSeen, and requested bounded by
// ObservationCap even under an announcement flood of fabricated hashes.
func TestRoundlessObservationBound(t *testing.T) {
	const cap = 16
	n := startNode(t, 7740, func(c *Config) {
		c.ObservationCap = cap
	})
	conn := rawDial(t, n, 0x0B5)
	var last [32]byte
	for batch := 0; batch < 40; batch++ {
		inv := &wire.Inv{}
		for i := 0; i < 10; i++ {
			var h [32]byte
			h[0], h[1], h[2] = byte(batch), byte(i), 0x77
			inv.Hashes = append(inv.Hashes, h)
			last = h
		}
		if err := wire.Write(conn, inv); err != nil {
			t.Fatal(err)
		}
	}
	// The newest rumor is never the one pruned, so its arrival marks the
	// whole flood as processed.
	waitFor(t, "flood processed", 2*time.Second, func() bool {
		n.obsMu.Lock()
		defer n.obsMu.Unlock()
		_, ok := n.firstSeen[last]
		return ok
	})
	n.obsMu.Lock()
	seen, req, ord := len(n.firstSeen), len(n.requested), len(n.order)
	n.obsMu.Unlock()
	if seen > 2*cap {
		t.Fatalf("firstSeen grew to %d, cap is %d", seen, 2*cap)
	}
	// The request-dedup map is bounded on the observation path, so it can
	// sit one past the cap between prunes — never more.
	if req > cap+1 {
		t.Fatalf("requested grew to %d, cap is %d", req, cap)
	}
	if ord > cap {
		t.Fatalf("order grew to %d, cap is %d", ord, cap)
	}
	// Accepted-block growth is bounded too: mine past the cap.
	miner := startNode(t, 7741, func(c *Config) { c.ObservationCap = cap })
	for i := 0; i < 3*cap; i++ {
		if _, err := miner.MineBlock(nil); err != nil {
			t.Fatal(err)
		}
	}
	miner.obsMu.Lock()
	ord = len(miner.order)
	miner.obsMu.Unlock()
	if ord > cap {
		t.Fatalf("miner order grew to %d, cap is %d", ord, cap)
	}
}

// TestSelfAnnounceAndTrickle pins the bootstrap half of discovery: a
// node announces its own address on connect, and freshly learned
// addresses trickle onward to already-connected peers.
func TestSelfAnnounceAndTrickle(t *testing.T) {
	hub := startNode(t, 7750, nil)
	a := startNode(t, 7751, nil)
	b := startNode(t, 7752, nil)

	// b connects first and then listens for trickle.
	if err := b.Connect(hub.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hub learns b's address", time.Second, func() bool {
		return hub.Book().Contains(b.Addr())
	})
	// a joins: the hub learns a by announce and trickles it to b.
	if err := a.Connect(hub.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hub learns a", time.Second, func() bool {
		return hub.Book().Contains(a.Addr())
	})
	waitFor(t, "a's address trickles to b", 2*time.Second, func() bool {
		return b.Book().Contains(a.Addr())
	})
	if got := a.Discovery().SelfAnnounces; got < 1 {
		t.Fatalf("SelfAnnounces = %d, want >= 1", got)
	}
	if got := hub.Discovery().AddrsRelayed; got < 1 {
		t.Fatalf("hub AddrsRelayed = %d, want >= 1", got)
	}
}

// TestFeelerVerifiesRumor pins the feeler loop: an unverified book entry
// is dialed, handshaked, disconnected, and promoted to dial-verified
// without becoming a lasting connection.
func TestFeelerVerifiesRumor(t *testing.T) {
	target := startNode(t, 7760, nil)
	n := startNode(t, 7761, func(c *Config) {
		c.Discovery.FeelerInterval = 25 * time.Millisecond
	})
	n.Book().Add(target.Addr())
	if n.Book().Verified(target.Addr()) {
		t.Fatal("rumor born verified")
	}
	waitFor(t, "feeler verification", 3*time.Second, func() bool {
		return n.Book().Verified(target.Addr())
	})
	if got := n.Discovery().FeelerVerified; got < 1 {
		t.Fatalf("FeelerVerified = %d, want >= 1", got)
	}
	if len(n.Peers()) != 0 {
		t.Fatalf("feeler left %d lasting connections", len(n.Peers()))
	}
}

// discoveryClusterConfig tunes a node for fast single-seed convergence in
// tests: aggressive refresh, feelers, trickle, and redial.
func discoveryClusterConfig(c *Config) {
	c.OutDegree = 3
	c.Explore = 1
	c.Discovery.RefreshInterval = 50 * time.Millisecond
	c.Discovery.TargetKnown = 64
	c.Discovery.FeelerInterval = 75 * time.Millisecond
	c.RedialInterval = 50 * time.Millisecond
	c.DrainTimeout = 200 * time.Millisecond
}

// degree returns a node's total live connection count.
func degree(n *Node) int { return len(n.Peers()) }

// assertConverged waits until every node has reached its out-degree (in
// total degree terms — the seed saturates with inbound) and knows at
// least fraction of the other nodes' addresses.
func assertConverged(t *testing.T, nodes []*Node, timeout time.Duration, fraction float64) {
	t.Helper()
	need := int(fraction * float64(len(nodes)-1))
	addrOf := make([]string, len(nodes))
	for i, n := range nodes {
		addrOf[i] = n.Addr()
	}
	waitFor(t, "single-seed discovery convergence", timeout, func() bool {
		for i, n := range nodes {
			if degree(n) < n.cfg.OutDegree {
				return false
			}
			known := 0
			for j, addr := range addrOf {
				if j != i && n.Book().Contains(addr) {
					known++
				}
			}
			if known < need {
				return false
			}
		}
		return true
	})
}

// TestDiscoveryConvergenceSingleSeed is the tentpole test: N nodes, every
// joiner given only the seed node's address, must converge via
// addr-gossip alone — full out-degree everywhere and >=90% address-book
// coverage.
func TestDiscoveryConvergenceSingleSeed(t *testing.T) {
	const N = 8
	nodes := make([]*Node, N)
	nodes[0] = startNode(t, 7800, discoveryClusterConfig)
	for i := 1; i < N; i++ {
		nodes[i] = startNode(t, uint64(7800+i), discoveryClusterConfig)
		if err := nodes[i].Connect(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	assertConverged(t, nodes, 15*time.Second, 0.9)
	// The whole topology grew from one seed: every non-seed node must have
	// learned addresses it was never given.
	for i := 1; i < N; i++ {
		if nodes[i].Book().Len() < 2 {
			t.Fatalf("node %d book never grew beyond the seed", i)
		}
	}
}

// TestChaosDiscoveryConvergence runs single-seed bootstrap under a 20%
// mixed fault plan: injected dial failures, resets, stalls, and message
// drops must delay but not prevent convergence.
func TestChaosDiscoveryConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos convergence is a long test")
	}
	plan := faults.Mixed(41, 0.2)
	const N = 8
	nodes := make([]*Node, N)
	nodes[0] = chaosNode(t, 7900, plan, discoveryClusterConfig)
	for i := 1; i < N; i++ {
		nodes[i] = chaosNode(t, uint64(7900+i), plan, discoveryClusterConfig)
		// Injected dial faults may refuse the first contact; retry.
		for attempt := 0; attempt < 20; attempt++ {
			if err := nodes[i].Connect(nodes[0].Addr()); err == nil {
				break
			}
		}
	}
	assertConverged(t, nodes, 45*time.Second, 0.9)
}

// TestVerifiedSurviveRumorFlood pins the eviction fix at the book level:
// dial-verified entries are never displaced by a flood of unverified
// rumor, while rumor still displaces rumor.
func TestVerifiedSurviveRumorFlood(t *testing.T) {
	b, _ := newClockBook(BookConfig{Cap: 8})
	verified := []string{"10.5.0.1:1000", "10.5.0.2:1000", "10.5.0.3:1000"}
	for _, a := range verified {
		b.DialSucceeded(a)
	}
	for i := 0; i < 100; i++ {
		b.AddSeen(fmt.Sprintf("10.6.%d.%d:2000", i/250, i%250+1), 0)
	}
	if got := b.Len(); got != 8 {
		t.Fatalf("book length %d, want cap 8", got)
	}
	for _, a := range verified {
		if !b.Contains(a) {
			t.Fatalf("verified %s evicted by rumor", a)
		}
		if !b.Verified(a) {
			t.Fatalf("%s lost verified status", a)
		}
	}
	if got := b.VerifiedCount(); got != 3 {
		t.Fatalf("VerifiedCount = %d, want 3", got)
	}
	// A book full of verified entries rejects rumor outright.
	full, _ := newClockBook(BookConfig{Cap: 3})
	for _, a := range verified {
		full.DialSucceeded(a)
	}
	if full.AddSeen("10.7.0.1:3000", 0) {
		t.Fatal("rumor admitted into an all-verified book at cap")
	}
	// But a verified newcomer may displace a verified entry.
	full.DialSucceeded("10.7.0.2:3000")
	if !full.Contains("10.7.0.2:3000") {
		t.Fatal("verified newcomer rejected")
	}
	if full.Len() != 3 {
		t.Fatalf("cap violated: %d", full.Len())
	}
}

// TestAddSeenBackdatesAndGossipableAges pins the age plumbing: a claimed
// age backdates LastSeen, and Gossipable reports it (while excluding
// banned and requested addresses).
func TestAddSeenBackdatesAndGossipableAges(t *testing.T) {
	b, clock := newClockBook(BookConfig{})
	b.AddSeen("10.8.0.1:1000", 90*time.Second)
	b.Add("10.8.0.2:1000")
	clock.advance(10 * time.Second)
	got := b.Gossipable("10.8.0.2:1000")
	if len(got) != 1 || got[0].Addr != "10.8.0.1:1000" {
		t.Fatalf("Gossipable = %v, want the non-excluded entry", got)
	}
	if got[0].Age != 100*time.Second {
		t.Fatalf("age %v, want 100s (90s claimed + 10s elapsed)", got[0].Age)
	}
	b.Misbehave(0xB, "10.8.0.1:1000", 10*DefaultBanThreshold)
	if rest := b.Gossipable(); len(rest) != 1 || rest[0].Addr != "10.8.0.2:1000" {
		t.Fatalf("banned entry still gossipable: %v", rest)
	}
}
