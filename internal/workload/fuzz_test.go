package workload

import (
	"testing"
	"time"
)

// fuzzSeedTraces is the in-code half of the seed corpus: well-formed
// traces of increasing complexity (testdata/fuzz/FuzzDecodeTrace holds
// the committed JSON of the same set plus malformed variants).
func fuzzSeedTraces() map[string]*TraceFile {
	return map[string]*TraceFile{
		"seed-empty-trace": {Version: TraceVersion, Nodes: 1, Arrivals: []TraceArrival{}},
		"seed-single": {Version: TraceVersion, Nodes: 4, Arrivals: []TraceArrival{
			{AtNS: 0, Miner: 3},
		}},
		"seed-multi": {Version: TraceVersion, Nodes: 16, Arrivals: []TraceArrival{
			{AtNS: 1_500_000_000, Miner: 0},
			{AtNS: 2_250_000_000, Miner: 15},
			{AtNS: 2_250_000_000, Miner: 7}, // equal timestamps are legal
			{AtNS: 9_000_000_000, Miner: 1},
		}},
	}
}

// fuzzMalformedTraces are committed regressions for every validation
// branch: bad version, bad node count, negative and backwards timestamps,
// out-of-range miners, and JSON that is not a trace at all.
func fuzzMalformedTraces() map[string]string {
	return map[string]string{
		"seed-not-json":      `{"version": 1,`,
		"seed-wrong-type":    `[1, 2, 3]`,
		"seed-bad-version":   `{"version": 99, "nodes": 4, "arrivals": []}`,
		"seed-zero-nodes":    `{"version": 1, "nodes": 0, "arrivals": []}`,
		"seed-negative-time": `{"version": 1, "nodes": 4, "arrivals": [{"at_ns": -5, "miner": 0}]}`,
		"seed-backwards":     `{"version": 1, "nodes": 4, "arrivals": [{"at_ns": 10, "miner": 0}, {"at_ns": 3, "miner": 1}]}`,
		"seed-miner-range":   `{"version": 1, "nodes": 4, "arrivals": [{"at_ns": 1, "miner": 4}]}`,
		"seed-miner-neg":     `{"version": 1, "nodes": 4, "arrivals": [{"at_ns": 1, "miner": -1}]}`,
	}
}

// FuzzDecodeTrace feeds arbitrary bytes to the trace codec: decoding must
// never panic, every accepted trace must satisfy its own invariants, must
// replay without the engine's mid-run validation tripping, and must
// round-trip through Encode bit-for-bit.
func FuzzDecodeTrace(f *testing.F) {
	for _, tf := range fuzzSeedTraces() {
		data, err := tf.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, data := range fuzzMalformedTraces() {
		f.Add([]byte(data))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := DecodeTrace(data)
		if err != nil {
			return
		}
		if err := tf.Validate(); err != nil {
			t.Fatalf("decoded trace fails its own validation: %v", err)
		}
		// Replay must be clean: nondecreasing, in-range, exhausting.
		tr := tf.Trace()
		prev := time.Duration(-1)
		count := 0
		for {
			a, ok := tr.Next()
			if !ok {
				break
			}
			if a.At < 0 || a.At < prev {
				t.Fatalf("replay out of order at event %d: %v after %v", count, a.At, prev)
			}
			if a.Miner < 0 || a.Miner >= tf.Nodes {
				t.Fatalf("replay miner %d outside [0, %d)", a.Miner, tf.Nodes)
			}
			prev = a.At
			count++
		}
		if count != len(tf.Arrivals) {
			t.Fatalf("replay yielded %d events, trace holds %d", count, len(tf.Arrivals))
		}
		// Encode → decode → encode must be a fixed point.
		enc1, err := tf.Encode()
		if err != nil {
			t.Fatalf("encoding a valid trace: %v", err)
		}
		tf2, err := DecodeTrace(enc1)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		enc2, err := tf2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(enc1) != string(enc2) {
			t.Fatalf("encode is not a fixed point:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}
