package workload

import (
	"encoding/json"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/geo"
	"github.com/perigee-net/perigee/internal/hashpower"
	"github.com/perigee-net/perigee/internal/latency"
	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/topology"
)

// newTestEngine builds a small geographic Perigee engine for workload
// tests, with explicit Workers/Shards so determinism tests can vary them.
func newTestEngine(t *testing.T, n int, seed uint64, workers, shards int) (*core.Engine, []float64) {
	t.Helper()
	root := rng.New(seed)
	u, err := geo.SampleUniverse(n, root.Derive("universe"))
	if err != nil {
		t.Fatal(err)
	}
	lat, err := latency.NewGeographic(u, root.Derive("latency"))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := topology.Random(n, 8, 20, root.Derive("topology"))
	if err != nil {
		t.Fatal(err)
	}
	forward := make([]time.Duration, n)
	fr := root.Derive("forward")
	for i := range forward {
		forward[i] = time.Duration(fr.ExpFloat64() * float64(50*time.Millisecond))
	}
	power, err := hashpower.Exponential(n, root.Derive("power"))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{
		Method:  core.Subset,
		Params:  core.DefaultParams(core.Subset),
		Table:   tbl,
		Latency: lat,
		Forward: forward,
		Power:   power,
		Rand:    root.Derive("engine"),
		Workers: workers,
		Shards:  shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, power
}

func runPoisson(t *testing.T, workers, shards int) []byte {
	t.Helper()
	eng, power := newTestEngine(t, 120, 11, workers, shards)
	trace, err := NewPoisson(rng.New(11).Derive("trace"), power, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Engine:        eng,
		Trace:         trace,
		Duration:      4 * time.Minute,
		RoundInterval: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunBasicAccounting(t *testing.T) {
	eng, power := newTestEngine(t, 120, 11, 0, 0)
	trace, err := NewPoisson(rng.New(11).Derive("trace"), power, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Engine:        eng,
		Trace:         trace,
		Duration:      4 * time.Minute,
		RoundInterval: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksMined == 0 {
		t.Fatal("no blocks mined")
	}
	// 240s at a 2s mean: crude 3-sigma band around 120 blocks.
	if rep.BlocksMined < 60 || rep.BlocksMined > 200 {
		t.Fatalf("blocks mined %d wildly off the 2s mean over 4m", rep.BlocksMined)
	}
	if rep.CanonicalBlocks+rep.StaleBlocks != rep.BlocksMined {
		t.Fatalf("canonical %d + stale %d != mined %d", rep.CanonicalBlocks, rep.StaleBlocks, rep.BlocksMined)
	}
	if rep.CanonicalBlocks == 0 {
		t.Fatal("empty canonical chain")
	}
	if rep.Rounds != 8 {
		t.Fatalf("rounds %d, want 8 (4m / 30s)", rep.Rounds)
	}
	total := 0
	for _, r := range rep.Revenue {
		total += r
	}
	if total != rep.CanonicalBlocks {
		t.Fatalf("revenue sums to %d, want %d", total, rep.CanonicalBlocks)
	}
	if rep.RevenueSkew < 0 || rep.RevenueSkew > 1 {
		t.Fatalf("revenue skew %v outside [0, 1]", rep.RevenueSkew)
	}
	if rep.StaleRate < 0 || rep.StaleRate >= 1 {
		t.Fatalf("stale rate %v out of range", rep.StaleRate)
	}
}

// Same seed + same trace must produce a bit-for-bit identical report at any
// Workers count and any Shards count — the determinism the replay codec
// and the conformance CI both stand on.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	base := runPoisson(t, 1, 0)
	if got := runPoisson(t, 8, 0); string(got) != string(base) {
		t.Fatalf("Workers=8 report diverged:\n%s\nvs\n%s", got, base)
	}
}

func TestRunDeterministicAcrossShards(t *testing.T) {
	base := runPoisson(t, 0, 1)
	if got := runPoisson(t, 0, 4); string(got) != string(base) {
		t.Fatalf("Shards=4 report diverged:\n%s\nvs\n%s", got, base)
	}
}

// Recording a run and replaying the recorded trace must reproduce the
// report byte for byte, through the on-disk codec.
func TestRunReplayByteEqual(t *testing.T) {
	const n = 120
	eng, power := newTestEngine(t, n, 23, 0, 0)
	gen, err := NewPoisson(rng.New(23).Derive("trace"), power, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	recorded := &TraceFile{Version: TraceVersion, Nodes: n}
	cfg := Config{
		Engine:        eng,
		Trace:         RecordingTrace(gen, recorded),
		Duration:      3 * time.Minute,
		RoundInterval: 30 * time.Second,
	}
	rep1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data1, err := json.Marshal(rep1)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := recorded.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}

	eng2, _ := newTestEngine(t, n, 23, 0, 0)
	cfg2 := cfg
	cfg2.Engine = eng2
	cfg2.Trace = loaded.Trace()
	rep2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(rep2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data1) != string(data2) {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", data2, data1)
	}
}

// A static topology must never fire a round, and batch partitioning at the
// staticBatch boundary must not show up in the results.
func TestRunStaticTopology(t *testing.T) {
	eng, power := newTestEngine(t, 120, 31, 0, 0)
	trace, err := NewPoisson(rng.New(31).Derive("trace"), power, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Engine: eng, Trace: trace, Duration: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 0 {
		t.Fatalf("static run fired %d rounds", rep.Rounds)
	}
	if rep.BlocksMined <= staticBatch {
		t.Fatalf("test meant to cross the static batch boundary, mined only %d", rep.BlocksMined)
	}
	if rep.CanonicalBlocks+rep.StaleBlocks != rep.BlocksMined {
		t.Fatalf("accounting broke across batches: %+v", rep)
	}
}

func TestRunValidation(t *testing.T) {
	eng, power := newTestEngine(t, 40, 1, 0, 0)
	trace, err := NewPoisson(rng.New(1), power, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Engine: nil, Trace: trace, Duration: time.Minute},
		{Engine: eng, Trace: nil, Duration: time.Minute},
		{Engine: eng, Trace: trace, Duration: 0},
		{Engine: eng, Trace: trace, Duration: time.Minute, RoundInterval: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	// A trace whose miner is out of range fails mid-run.
	tf := &TraceFile{Version: TraceVersion, Nodes: 400, Arrivals: []TraceArrival{{AtNS: 1, Miner: 300}}}
	if _, err := Run(Config{Engine: eng, Trace: tf.Trace(), Duration: time.Minute}); err == nil {
		t.Fatal("out-of-range miner accepted")
	}
	// So does one that runs backwards (bypassing the codec's validation).
	back := &replayTrace{arrivals: []TraceArrival{{AtNS: 5e8, Miner: 1}, {AtNS: 1e8, Miner: 2}}}
	if _, err := Run(Config{Engine: eng, Trace: back, Duration: time.Minute}); err == nil {
		t.Fatal("backwards trace accepted")
	}
}

// The compact per-node views must agree with real chain.Store instances
// fed the same delivery schedule — the equivalence that licenses not
// keeping n stores.
func TestViewsMatchChainStores(t *testing.T) {
	const (
		nodes  = 8
		blocks = 120
	)
	r := rand.New(rand.NewSource(99))
	genesis := chain.NewGenesis("views-equiv")

	v := newViews(nodes)
	stores := make([]*chain.Store, nodes)
	for i := range stores {
		s, err := chain.NewStore(genesis)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}

	// Grow a random block DAG: each block extends a uniformly random
	// existing block (lots of forks), then delivers to every node in a
	// random order at increasing times — children often beating parents.
	real := []*chain.Block{genesis}
	type delivery struct {
		at   time.Duration
		node int
		id   int32
	}
	var schedule []delivery
	now := time.Duration(0)
	for b := 1; b <= blocks; b++ {
		parent := int32(r.Intn(b))
		id := v.addBlock(parent)
		blk := chain.NewBlock(real[parent], nil, time.UnixMilli(int64(b)), uint64(b))
		real = append(real, blk)
		for _, node := range r.Perm(nodes) {
			now += time.Millisecond
			schedule = append(schedule, delivery{at: now, node: node, id: id})
		}
	}
	r.Shuffle(len(schedule), func(i, j int) {
		// Shuffle only within coarse windows to keep times increasing per
		// node while still reordering parent/child arrivals.
		if abs(i-j) < 3*nodes {
			schedule[i].at, schedule[j].at = schedule[j].at, schedule[i].at
			schedule[i], schedule[j] = schedule[j], schedule[i]
		}
	})

	for _, d := range schedule {
		v.deliver(d.node, d.id)
		if _, err := stores[d.node].AddAt(real[d.id], d.at); err != nil {
			t.Fatalf("store rejected delivery: %v", err)
		}
	}
	for node, s := range stores {
		// Flush the store's stash-free model: stores stash internally too,
		// so after all deliveries both must agree on the tip height...
		wantTip := s.Tip().Header.Hash()
		got := real[v.tip[node]].Header.Hash()
		if got != wantTip {
			t.Fatalf("node %d: views tip %s, store tip %s", node, got, wantTip)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
