// Package workload drives the Perigee engine with a continuous-time
// blockchain workload: miners produce blocks at random simulated wall-clock
// times, blocks race through the network over the zero-alloc netsim fabric,
// every node maintains a longest-chain first-seen view, and topology rounds
// fire on elapsed time rather than block counts.
//
// Where the lockstep round driver (core.Engine.Step) measures how fast
// blocks arrive, this package measures what slow arrivals cost: forks,
// stale blocks, and mining-revenue skew. Two blocks mined within one
// another's propagation delay extend the same parent, the network splits,
// and exactly one branch survives — the loser's miner earned nothing. The
// headline Report metrics (ForkRate, StaleRate, RevenueSkew) quantify that,
// per selector, alongside the λ percentiles the rest of the repository
// already reports.
//
// Arrival processes are pluggable via the Trace interface and replayable
// bit-for-bit: the Poisson, Gamma, and Weibull generators are deterministic
// functions of an rng.RNG stream, and any trace can be materialized to a
// JSON TraceFile and replayed to reproduce a run's Report byte for byte.
package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/perigee-net/perigee/internal/hashpower"
	"github.com/perigee-net/perigee/internal/rng"
)

// Arrival is one block-production event: at simulated time At, node Miner
// finds a block (on whatever its view's tip is at that moment).
type Arrival struct {
	// At is the absolute simulated time of the event.
	At time.Duration
	// Miner is the producing node.
	Miner int
}

// Trace is a stream of block-production events in nondecreasing time
// order. Next returns ok=false when the trace is exhausted; generator
// traces are infinite and only a recorded TraceFile ever exhausts.
type Trace interface {
	Next() (Arrival, bool)
}

// generator turns a stream of i.i.d. inter-arrival draws into an infinite
// Trace: each event advances the clock by one draw and picks the miner by
// hash power. The interval is always drawn before the miner, so every
// generator consumes its RNG stream identically.
type generator struct {
	r        *rng.RNG
	sampler  *hashpower.Sampler
	now      time.Duration
	interval func(*rng.RNG) time.Duration
}

func (g *generator) Next() (Arrival, bool) {
	g.now += g.interval(g.r)
	return Arrival{At: g.now, Miner: g.sampler.Sample(g.r)}, true
}

func newGenerator(r *rng.RNG, power []float64, interval func(*rng.RNG) time.Duration) (Trace, error) {
	if r == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	sampler, err := hashpower.NewSampler(power)
	if err != nil {
		return nil, err
	}
	return &generator{r: r, sampler: sampler, interval: interval}, nil
}

// NewPoisson returns the standard mining model: exponential inter-arrival
// times with the given mean (a Poisson process, matching proof-of-work
// difficulty retargeting), miners drawn proportionally to power.
func NewPoisson(r *rng.RNG, power []float64, mean time.Duration) (Trace, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("workload: mean block interval %v must be positive", mean)
	}
	return newGenerator(r, power, func(r *rng.RNG) time.Duration {
		return time.Duration(r.ExpFloat64() * float64(mean))
	})
}

// NewGamma returns a Gamma(shape) renewal process normalized to the given
// mean inter-arrival time. shape > 1 is more regular than Poisson (a crude
// stand-in for partially synchronized block production), shape < 1 is
// burstier; shape = 1 recovers the exponential.
func NewGamma(r *rng.RNG, power []float64, mean time.Duration, shape float64) (Trace, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("workload: mean block interval %v must be positive", mean)
	}
	if shape <= 0 {
		return nil, fmt.Errorf("workload: gamma shape %v must be positive", shape)
	}
	// Gamma(shape, 1) has mean `shape`; dividing by shape normalizes.
	scale := float64(mean) / shape
	return newGenerator(r, power, func(r *rng.RNG) time.Duration {
		return time.Duration(gammaDraw(r, shape) * scale)
	})
}

// NewWeibull returns a Weibull(shape) renewal process normalized to the
// given mean inter-arrival time: scale = mean / Γ(1 + 1/shape). shape = 1
// recovers the exponential; shape < 1 has a heavy tail of long gaps.
func NewWeibull(r *rng.RNG, power []float64, mean time.Duration, shape float64) (Trace, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("workload: mean block interval %v must be positive", mean)
	}
	if shape <= 0 {
		return nil, fmt.Errorf("workload: weibull shape %v must be positive", shape)
	}
	scale := float64(mean) / math.Gamma(1+1/shape)
	inv := 1 / shape
	return newGenerator(r, power, func(r *rng.RNG) time.Duration {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return time.Duration(scale * math.Pow(-math.Log(u), inv))
	})
}

// gammaDraw samples Gamma(shape, 1) by Marsaglia–Tsang, boosting shapes
// below one through Gamma(shape+1) and a uniform power correction.
func gammaDraw(r *rng.RNG, shape float64) float64 {
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return gammaDraw(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Materialize drains t up to (but excluding) horizon into a validated
// TraceFile for n nodes. A workload run of the same duration consumes
// exactly the materialized events, so replaying the file reproduces the
// run.
func Materialize(t Trace, horizon time.Duration, n int) (*TraceFile, error) {
	if t == nil {
		return nil, fmt.Errorf("workload: nil trace")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: horizon %v must be positive", horizon)
	}
	tf := &TraceFile{Version: TraceVersion, Nodes: n, Arrivals: []TraceArrival{}}
	for {
		a, ok := t.Next()
		if !ok || a.At >= horizon {
			break
		}
		tf.Arrivals = append(tf.Arrivals, TraceArrival{AtNS: a.At.Nanoseconds(), Miner: a.Miner})
	}
	if err := tf.Validate(); err != nil {
		return nil, err
	}
	return tf, nil
}
