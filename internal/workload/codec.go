package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// TraceVersion is the trace-file format version this package reads and
// writes.
const TraceVersion = 1

// TraceArrival is one recorded block-production event. Times are integer
// nanoseconds so the codec round-trips exactly — a replayed trace is
// bit-for-bit the trace that was recorded, with no float formatting drift.
type TraceArrival struct {
	AtNS  int64 `json:"at_ns"`
	Miner int   `json:"miner"`
}

// TraceFile is the on-disk arrival-trace format: a version tag, the node
// count the miner indices refer to, and the events in nondecreasing time
// order.
type TraceFile struct {
	Version  int            `json:"version"`
	Nodes    int            `json:"nodes"`
	Arrivals []TraceArrival `json:"arrivals"`
}

// Validate checks the structural invariants every consumer assumes:
// a known version, a positive node count, non-negative nondecreasing
// timestamps, and miner indices inside [0, Nodes).
func (tf *TraceFile) Validate() error {
	if tf.Version != TraceVersion {
		return fmt.Errorf("workload: trace version %d, want %d", tf.Version, TraceVersion)
	}
	if tf.Nodes <= 0 {
		return fmt.Errorf("workload: trace node count %d must be positive", tf.Nodes)
	}
	var prev int64
	for i, a := range tf.Arrivals {
		if a.AtNS < 0 {
			return fmt.Errorf("workload: trace arrival %d at negative time %dns", i, a.AtNS)
		}
		if a.AtNS < prev {
			return fmt.Errorf("workload: trace arrival %d at %dns precedes arrival %d at %dns", i, a.AtNS, i-1, prev)
		}
		if a.Miner < 0 || a.Miner >= tf.Nodes {
			return fmt.Errorf("workload: trace arrival %d miner %d outside [0, %d)", i, a.Miner, tf.Nodes)
		}
		prev = a.AtNS
	}
	return nil
}

// DecodeTrace parses and validates a JSON trace.
func DecodeTrace(data []byte) (*TraceFile, error) {
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("workload: parsing trace: %w", err)
	}
	if err := tf.Validate(); err != nil {
		return nil, err
	}
	return &tf, nil
}

// Encode renders the trace as indented JSON. Encoding is deterministic:
// field order is fixed by the struct and timestamps are integers, so
// decode∘encode is the identity on canonical files.
func (tf *TraceFile) Encode() ([]byte, error) {
	if err := tf.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(tf, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ReadTraceFile loads and validates a trace from disk.
func ReadTraceFile(path string) (*TraceFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	return DecodeTrace(data)
}

// WriteTraceFile validates and writes a trace to disk.
func (tf *TraceFile) WriteTraceFile(path string) error {
	data, err := tf.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Trace returns a replay Trace over the recorded events. Each call starts
// a fresh replay from the first event.
func (tf *TraceFile) Trace() Trace {
	return &replayTrace{arrivals: tf.Arrivals}
}

type replayTrace struct {
	arrivals []TraceArrival
	next     int
}

func (t *replayTrace) Next() (Arrival, bool) {
	if t.next >= len(t.arrivals) {
		return Arrival{}, false
	}
	a := t.arrivals[t.next]
	t.next++
	return Arrival{At: time.Duration(a.AtNS), Miner: a.Miner}, true
}

// RecordingTrace wraps a trace so every consumed event is appended to tf
// (whose Version and Nodes the caller sets). Wrap the trace handed to Run
// to capture exactly the events a run consumed, ready for replay.
func RecordingTrace(t Trace, tf *TraceFile) Trace {
	return &recordingTrace{inner: t, tf: tf}
}

type recordingTrace struct {
	inner Trace
	tf    *TraceFile
}

func (t *recordingTrace) Next() (Arrival, bool) {
	a, ok := t.inner.Next()
	if ok {
		t.tf.Arrivals = append(t.tf.Arrivals, TraceArrival{AtNS: a.At.Nanoseconds(), Miner: a.Miner})
	}
	return a, ok
}
