package workload

// views holds every node's longest-chain first-seen view over the run's
// shared block metadata. A naive implementation would give each of n nodes
// its own chain.Store holding real blocks — n copies of hashes and headers
// for data that differs only in arrival order. Instead blocks are interned
// once into flat metadata arrays (parent, height, miner) and each node
// keeps just a tip pointer, a received bitset, and a small stash of blocks
// waiting for a parent. The chain.Store semantics are preserved exactly —
// an equivalence test in engine_test.go replays runs against real per-node
// stores — at a few bits per (node, block) instead of a store per node.
type views struct {
	// Shared block metadata, indexed by block id (0 = genesis).
	parent []int32
	height []int32

	// Per-node state.
	tip   []int32    // id of the node's current best block
	have  [][]uint64 // received-block bitsets
	stash [][]int32  // received blocks whose parent the node lacks

	// Aggregate reorg telemetry across all nodes.
	reorgs   int
	maxDepth int
}

func newViews(n int) *views {
	v := &views{
		parent: make([]int32, 1, 64),
		height: make([]int32, 1, 64),
		tip:    make([]int32, n),
		have:   make([][]uint64, n),
		stash:  make([][]int32, n),
	}
	v.parent[0] = -1 // genesis
	for i := range v.have {
		v.have[i] = make([]uint64, 1)
		v.have[i][0] = 1 // everyone starts holding genesis
	}
	return v
}

// addBlock interns a new block's metadata and returns its id.
func (v *views) addBlock(parent int32) int32 {
	id := int32(len(v.parent))
	v.parent = append(v.parent, parent)
	v.height = append(v.height, v.height[parent]+1)
	return id
}

func (v *views) has(node int, b int32) bool {
	w := int(b) >> 6
	return w < len(v.have[node]) && v.have[node][w]&(1<<(uint(b)&63)) != 0
}

func (v *views) mark(node int, b int32) {
	w := int(b) >> 6
	for len(v.have[node]) <= w {
		v.have[node] = append(v.have[node], 0)
	}
	v.have[node][w] |= 1 << (uint(b) & 63)
}

// connected reports whether node holds b and b's whole ancestry — the
// stash discipline guarantees a held parent is a connected parent, so
// holding b's parent is sufficient.
func (v *views) connected(node int, b int32) bool {
	p := v.parent[b]
	return p < 0 || v.has(node, p)
}

// deliver hands block b to node at its arrival: stash it when the parent
// has not arrived, otherwise connect it and cascade through any stashed
// descendants it unblocks. Deliveries are idempotent.
func (v *views) deliver(node int, b int32) {
	if v.has(node, b) {
		return
	}
	if !v.has(node, v.parent[b]) {
		for _, c := range v.stash[node] {
			if c == b {
				return
			}
		}
		v.stash[node] = append(v.stash[node], b)
		return
	}
	v.mark(node, b)
	v.maybeAdvanceTip(node, b)
	// Cascade: connecting b may unblock stashed blocks, whose connection
	// may unblock more. The stash is scanned in insertion order and stays
	// tiny (only reorg-window races land there), so the rescan loop is
	// cheap; order does not matter because heights decide the tip and the
	// final connected set is order-independent.
	st := v.stash[node]
	for progressed := true; progressed; {
		progressed = false
		kept := st[:0]
		for _, c := range st {
			if v.has(node, v.parent[c]) {
				v.mark(node, c)
				v.maybeAdvanceTip(node, c)
				progressed = true
			} else {
				kept = append(kept, c)
			}
		}
		st = kept
	}
	v.stash[node] = st
}

// maybeAdvanceTip applies the longest-chain first-seen rule: the tip moves
// only to a strictly higher block (an equal-height rival arrived later by
// construction, since deliveries are processed in arrival order). A move
// that abandons previously-canonical blocks is a reorg of that depth.
func (v *views) maybeAdvanceTip(node int, b int32) {
	old := v.tip[node]
	if v.height[b] <= v.height[old] {
		return
	}
	v.tip[node] = b
	if v.parent[b] == old {
		return // plain extension, the common case
	}
	// Walk b back to old's height, then both back to the common ancestor;
	// the old-branch distance is the reorg depth (0 when old is an
	// ancestor of b, e.g. after connecting a stashed multi-block cascade).
	a := b
	for v.height[a] > v.height[old] {
		a = v.parent[a]
	}
	depth := 0
	for a != old {
		a = v.parent[a]
		old = v.parent[old]
		depth++
	}
	if depth > 0 {
		v.reorgs++
		if depth > v.maxDepth {
			v.maxDepth = depth
		}
	}
}
