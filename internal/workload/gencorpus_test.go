package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateSeedCorpus writes the committed seed corpus for
// FuzzDecodeTrace. Run with WORKLOAD_GEN_CORPUS=1 after changing the seed
// sets in fuzz_test.go, then commit testdata/fuzz.
func TestGenerateSeedCorpus(t *testing.T) {
	if os.Getenv("WORKLOAD_GEN_CORPUS") == "" {
		t.Skip("corpus generator")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeTrace")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, tf := range fuzzSeedTraces() {
		data, err := tf.Encode()
		if err != nil {
			t.Fatal(err)
		}
		write(name, data)
	}
	for name, data := range fuzzMalformedTraces() {
		write(name, []byte(data))
	}
}
