package workload

import (
	"math"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
)

func drainMean(t *testing.T, tr Trace, events int) (mean time.Duration, last Arrival) {
	t.Helper()
	prev := time.Duration(0)
	for i := 0; i < events; i++ {
		a, ok := tr.Next()
		if !ok {
			t.Fatalf("generator exhausted after %d events", i)
		}
		if a.At < prev {
			t.Fatalf("event %d at %v before %v", i, a.At, prev)
		}
		prev = a.At
		last = a
	}
	return last.At / time.Duration(events), last
}

// Every generator must hit its requested mean inter-arrival time.
func TestGeneratorMeans(t *testing.T) {
	const mean = 2 * time.Second
	power := []float64{0.5, 0.3, 0.2}
	cases := []struct {
		name string
		mk   func(*rng.RNG) (Trace, error)
	}{
		{"poisson", func(r *rng.RNG) (Trace, error) { return NewPoisson(r, power, mean) }},
		{"gamma-0.5", func(r *rng.RNG) (Trace, error) { return NewGamma(r, power, mean, 0.5) }},
		{"gamma-4", func(r *rng.RNG) (Trace, error) { return NewGamma(r, power, mean, 4) }},
		{"weibull-0.8", func(r *rng.RNG) (Trace, error) { return NewWeibull(r, power, mean, 0.8) }},
		{"weibull-2", func(r *rng.RNG) (Trace, error) { return NewWeibull(r, power, mean, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := tc.mk(rng.New(5))
			if err != nil {
				t.Fatal(err)
			}
			got, _ := drainMean(t, tr, 20000)
			if ratio := float64(got) / float64(mean); math.Abs(ratio-1) > 0.05 {
				t.Fatalf("empirical mean %v, want %v within 5%%", got, mean)
			}
		})
	}
}

// Miner draws must follow hash power.
func TestGeneratorMinerShares(t *testing.T) {
	power := []float64{0.7, 0.2, 0.1}
	tr, err := NewPoisson(rng.New(9), power, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const events = 20000
	counts := make([]int, len(power))
	for i := 0; i < events; i++ {
		a, _ := tr.Next()
		counts[a.Miner]++
	}
	for i, p := range power {
		share := float64(counts[i]) / events
		if math.Abs(share-p) > 0.02 {
			t.Fatalf("miner %d share %.3f, want %.3f", i, share, p)
		}
	}
}

// Generators are pure functions of their stream: same seed, same trace.
func TestGeneratorDeterminism(t *testing.T) {
	power := []float64{0.25, 0.25, 0.25, 0.25}
	for i := 0; i < 2; i++ {
		a, err := NewGamma(rng.New(77).Derive("trace"), power, time.Second, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewGamma(rng.New(77).Derive("trace"), power, time.Second, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 1000; j++ {
			x, _ := a.Next()
			y, _ := b.Next()
			if x != y {
				t.Fatalf("event %d diverged: %+v vs %+v", j, x, y)
			}
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	power := []float64{1}
	r := rng.New(1)
	if _, err := NewPoisson(nil, power, time.Second); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewPoisson(r, power, 0); err == nil {
		t.Fatal("zero mean accepted")
	}
	if _, err := NewGamma(r, power, time.Second, 0); err == nil {
		t.Fatal("zero gamma shape accepted")
	}
	if _, err := NewWeibull(r, power, time.Second, -1); err == nil {
		t.Fatal("negative weibull shape accepted")
	}
	if _, err := NewPoisson(r, nil, time.Second); err == nil {
		t.Fatal("empty power accepted")
	}
}

// Materialize captures exactly the pre-horizon events, and the resulting
// file replays to the same arrivals a fresh generator produces.
func TestMaterializeReplay(t *testing.T) {
	power := []float64{0.6, 0.4}
	mk := func() Trace {
		tr, err := NewPoisson(rng.New(3), power, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	const horizon = 2 * time.Minute
	tf, err := Materialize(mk(), horizon, len(power))
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.Arrivals) == 0 {
		t.Fatal("empty materialization")
	}
	replay := tf.Trace()
	fresh := mk()
	for i := range tf.Arrivals {
		want, _ := fresh.Next()
		got, ok := replay.Next()
		if !ok || got != want {
			t.Fatalf("event %d: replay %+v, generator %+v (ok=%v)", i, got, want, ok)
		}
		if got.At >= horizon {
			t.Fatalf("event %d at %v crossed the horizon", i, got.At)
		}
	}
	if _, ok := replay.Next(); ok {
		t.Fatal("replay outlived its file")
	}
}
