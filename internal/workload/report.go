package workload

// Report is a run's fork-economics summary: what the workload's block
// races cost, per the canonical chain the run converged to. All fields are
// plain values and slices (no maps, no NaN-able divisions), so
// encoding/json renders a Report deterministically — replaying a recorded
// trace reproduces the generating run's report byte for byte.
type Report struct {
	// Nodes is the network size.
	Nodes int `json:"nodes"`
	// DurationNS is the simulated run length in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Rounds is how many Perigee topology rounds fired (0 when the
	// topology was static).
	Rounds int `json:"rounds"`
	// BlocksMined counts every block produced by the trace.
	BlocksMined int `json:"blocks_mined"`
	// CanonicalBlocks is the length of the winning chain (genesis
	// excluded).
	CanonicalBlocks int `json:"canonical_blocks"`
	// StaleBlocks counts mined blocks that did not make the canonical
	// chain — the direct waste slow propagation causes.
	StaleBlocks int `json:"stale_blocks"`
	// StaleRate is StaleBlocks / BlocksMined (0 for an empty run).
	StaleRate float64 `json:"stale_rate"`
	// ForkEvents counts blocks that ended up with two or more children —
	// each is a moment the network visibly split.
	ForkEvents int `json:"fork_events"`
	// ForkRate is ForkEvents / BlocksMined (0 for an empty run).
	ForkRate float64 `json:"fork_rate"`
	// Reorgs counts tip switches (across all nodes) that abandoned at
	// least one previously-canonical block.
	Reorgs int `json:"reorgs"`
	// MaxReorgDepth is the deepest such switch anywhere in the run.
	MaxReorgDepth int `json:"max_reorg_depth"`
	// RevenueSkew is half the L1 distance between the revenue-share and
	// hash-power-share vectors: 0 when every miner earned exactly its
	// power share, approaching 1 as rewards concentrate unfairly.
	RevenueSkew float64 `json:"revenue_skew"`
	// Revenue is the canonical-block count per miner.
	Revenue []int `json:"revenue"`
}
