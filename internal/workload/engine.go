package workload

import (
	"fmt"
	"math"
	"time"

	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/core"
	"github.com/perigee-net/perigee/internal/des"
	"github.com/perigee-net/perigee/internal/stats"
)

// staticBatch bounds how many blocks a static-topology run broadcasts per
// netsim batch. Partitioning is invisible in the results (no topology
// update ever fires between batches and event replay order is a pure merge
// by timestamp), so the cap only bounds arrival-buffer memory.
const staticBatch = 256

// Config describes one continuous-time workload run.
type Config struct {
	// Engine is the configured Perigee engine: topology, latency model,
	// selector, and hash power. The workload drives it in timed-round
	// mode; the caller must not Step it concurrently.
	Engine *core.Engine
	// Trace is the block-production schedule. Use NewPoisson (or Gamma /
	// Weibull) for generated workloads, TraceFile.Trace for replays, and
	// RecordingTrace to capture the consumed events.
	Trace Trace
	// Duration is the simulated run length; events at or after Duration
	// are not consumed.
	Duration time.Duration
	// RoundInterval is the Perigee topology-round period: every elapsed
	// interval, the blocks mined within it become the selector's
	// observations and the engine updates connections. Zero keeps the
	// topology static for the whole run (the baseline arms).
	RoundInterval time.Duration
}

func (cfg *Config) validate() error {
	if cfg.Engine == nil {
		return fmt.Errorf("workload: nil engine")
	}
	if cfg.Trace == nil {
		return fmt.Errorf("workload: nil trace")
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("workload: duration %v must be positive", cfg.Duration)
	}
	if cfg.RoundInterval < 0 {
		return fmt.Errorf("workload: round interval %v must be non-negative", cfg.RoundInterval)
	}
	return nil
}

// Run simulates the workload over continuous time and returns the run's
// fork-economics Report.
//
// The clock is event-driven. Each topology round (or fixed-size batch when
// the topology is static) first drains the trace for the blocks mined in
// its interval and propagates them through netsim's broadcast fabric over
// the round's topology — block contents never influence propagation, so
// arrival times can be computed up front in parallel. Chain state then
// replays sequentially in simulated-time order: before each mining event,
// every strictly earlier delivery lands (stashing blocks that beat their
// parents to a node, counting the reorgs tip switches cause), and the
// miner extends whatever its own view holds as the tip at that instant —
// two miners inside one another's propagation delay therefore extend the
// same parent and fork the chain. A miner holds its own block immediately;
// every other node receives it at mining time plus netsim's arrival delay.
// Deliveries still in flight when a round ends simply land in later
// rounds, and ties resolve deterministically (deliveries at exactly a
// mining event's timestamp land after it; equal-time deliveries land in
// mining order), so a run is a pure function of (engine config, trace,
// duration, round interval) — bit-for-bit identical at any Workers or
// Shards setting.
//
// The canonical chain is arbitrated by a single chain.Store fed every
// block at its mining time: longest chain wins, height ties go to the
// first-mined block. Blocks off that chain are stale; their miners earn
// nothing.
func Run(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := cfg.Engine
	n := e.N()

	genesis := chain.NewGenesis("workload")
	store, err := chain.NewStore(genesis)
	if err != nil {
		return nil, err
	}
	views := newViews(n)
	blocks := []*chain.Block{genesis}
	minedBy := []int32{-1}
	ids := map[chain.Hash]int32{genesis.Header.Hash(): 0}
	epoch := time.Unix(0, 0).UTC()

	var queue des.DeliveryQueue
	drainUntil := func(at time.Duration) {
		for queue.Len() > 0 {
			d := queue.PeekMin()
			if d.At >= at {
				return
			}
			queue.PopMin()
			views.deliver(int(d.Node), d.Slot)
		}
	}

	// One-event lookahead over the trace: batch draining must see the
	// first event beyond its boundary without losing it.
	pending, pendingOK := cfg.Trace.Next()
	lastAt := time.Duration(0)

	var batchAt []time.Duration
	var sources []int
	var arrivals [][]time.Duration
	rounds := 0

	for start := time.Duration(0); start < cfg.Duration && (pendingOK || queue.Len() > 0); {
		end := cfg.Duration
		if cfg.RoundInterval > 0 && start+cfg.RoundInterval < end {
			end = start + cfg.RoundInterval
		}

		// Drain the trace for this interval's block-production events.
		batchAt, sources = batchAt[:0], sources[:0]
		for pendingOK && pending.At < end {
			if pending.At < lastAt {
				return nil, fmt.Errorf("workload: trace time went backwards: %v after %v", pending.At, lastAt)
			}
			if pending.Miner < 0 || pending.Miner >= n {
				return nil, fmt.Errorf("workload: trace miner %d outside [0, %d)", pending.Miner, n)
			}
			lastAt = pending.At
			batchAt = append(batchAt, pending.At)
			sources = append(sources, pending.Miner)
			pending, pendingOK = cfg.Trace.Next()
			if cfg.RoundInterval == 0 && len(batchAt) == staticBatch {
				break
			}
		}

		if len(batchAt) == 0 {
			drainUntil(end)
			start = end
			continue
		}

		// Propagation first: arrival times for the whole batch, over this
		// round's topology, via the engine's broadcast fabric.
		tr, err := core.BeginTimedRound(e, len(batchAt))
		if err != nil {
			return nil, err
		}
		for len(arrivals) < len(batchAt) {
			arrivals = append(arrivals, nil)
		}
		if err := tr.BroadcastAll(sources, arrivals[:len(batchAt)]); err != nil {
			return nil, err
		}

		// Chain state second: replay deliveries and mining events in
		// simulated-time order.
		for k, at := range batchAt {
			drainUntil(at)
			miner := sources[k]
			parent := views.tip[miner]
			id := views.addBlock(parent)
			blk := chain.NewBlock(blocks[parent], nil, epoch.Add(at), uint64(id))
			blocks = append(blocks, blk)
			minedBy = append(minedBy, int32(miner))
			ids[blk.Header.Hash()] = id
			if _, err := store.AddAt(blk, at); err != nil {
				return nil, fmt.Errorf("workload: canonical store rejected block %d: %w", id, err)
			}
			views.deliver(miner, id)
			for node, d := range arrivals[k] {
				if node == miner || d >= stats.InfDuration {
					continue
				}
				queue.Push(des.Delivery{At: at + d, Node: int32(node), Slot: id})
			}
		}

		// Round boundary: the interval's blocks are exactly what the
		// selector observed; fire the topology update. Empty intervals
		// never reach here and skip the update — there is nothing to
		// score.
		if cfg.RoundInterval > 0 {
			if _, err := tr.Finish(); err != nil {
				return nil, err
			}
			rounds++
		}
		if cfg.RoundInterval == 0 && pendingOK && pending.At < end {
			continue // the static batch cap truncated this interval
		}
		start = end
	}
	drainUntil(cfg.Duration)

	return buildReport(cfg, n, e.Power(), store, views, minedBy, ids, rounds)
}

func buildReport(cfg Config, n int, power []float64, store *chain.Store, views *views,
	minedBy []int32, ids map[chain.Hash]int32, rounds int) (*Report, error) {
	mined := len(minedBy) - 1 // genesis excluded
	rep := &Report{
		Nodes:         n,
		DurationNS:    cfg.Duration.Nanoseconds(),
		Rounds:        rounds,
		BlocksMined:   mined,
		Reorgs:        views.reorgs,
		MaxReorgDepth: views.maxDepth,
		Revenue:       make([]int, n),
	}

	// The canonical chain, from the arbiter store's tip back to genesis.
	canonical := 0
	for b := store.Tip(); b.Header.Height > 0; {
		id, ok := ids[b.Header.Hash()]
		if !ok {
			return nil, fmt.Errorf("workload: canonical block %s not interned", b.Header.Hash())
		}
		rep.Revenue[minedBy[id]]++
		canonical++
		b = store.Get(b.Header.PrevHash)
		if b == nil {
			return nil, fmt.Errorf("workload: canonical chain broke below height %d", canonical)
		}
	}
	rep.CanonicalBlocks = canonical
	rep.StaleBlocks = mined - canonical

	// Fork events: blocks (genesis included) with two or more children.
	children := make([]int, len(views.parent))
	for id := 1; id < len(views.parent); id++ {
		children[views.parent[id]]++
	}
	for _, c := range children {
		if c >= 2 {
			rep.ForkEvents++
		}
	}

	if mined > 0 {
		rep.StaleRate = float64(rep.StaleBlocks) / float64(mined)
		rep.ForkRate = float64(rep.ForkEvents) / float64(mined)
	}

	// Revenue skew: half the L1 distance between revenue share and hash
	// power share.
	if canonical > 0 {
		var total float64
		for _, p := range power {
			total += p
		}
		var l1 float64
		for i, p := range power {
			share := float64(rep.Revenue[i]) / float64(canonical)
			l1 += math.Abs(share - p/total)
		}
		rep.RevenueSkew = l1 / 2
	}
	return rep, nil
}
