package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed on %d of 64 draws", same)
	}
}

func TestDeriveIsStateless(t *testing.T) {
	parent := New(7)
	first := parent.Derive("latency")
	// Consume a lot of parent state; derivation must not care.
	for i := 0; i < 1000; i++ {
		parent.Uint64()
	}
	second := parent.Derive("latency")
	for i := 0; i < 50; i++ {
		if first.Uint64() != second.Uint64() {
			t.Fatalf("derive depends on parent draw state at draw %d", i)
		}
	}
}

func TestDeriveLabelsIndependent(t *testing.T) {
	parent := New(7)
	a := parent.Derive("alpha")
	b := parent.Derive("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different labels agreed on %d of 64 draws", same)
	}
}

func TestDeriveIndexed(t *testing.T) {
	parent := New(3)
	if parent.DeriveIndexed("trial", 0).Uint64() == parent.DeriveIndexed("trial", 1).Uint64() {
		// A single collision is not proof of failure, but with 64-bit
		// outputs it is overwhelmingly unlikely.
		t.Fatal("indexed derivations 0 and 1 produced identical first draw")
	}
	a := parent.DeriveIndexed("trial", 5)
	b := parent.DeriveIndexed("trial", 5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("same index must produce the same stream")
	}
}

func TestPairJitterSymmetric(t *testing.T) {
	r := New(99)
	check := func(u, v uint16, ampRaw uint8) bool {
		amp := float64(ampRaw%50) / 100 // in [0, 0.49]
		a := r.PairJitter(int(u), int(v), amp)
		b := r.PairJitter(int(v), int(u), amp)
		return a == b
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairJitterBounds(t *testing.T) {
	r := New(123)
	check := func(u, v uint16) bool {
		const amp = 0.2
		j := r.PairJitter(int(u), int(v), amp)
		return j >= 1-amp && j <= 1+amp && !math.IsNaN(j)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairJitterDistribution(t *testing.T) {
	r := New(5)
	const amp = 0.25
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.PairJitter(i, i+1, amp)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("jitter mean %.4f too far from 1", mean)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}
