// Package rng provides deterministic, splittable pseudo-random number
// streams for simulations.
//
// Every experiment in this repository is driven by a single root seed.
// Independent subsystems (latency jitter, hash-power sampling, topology
// construction, exploration, ...) derive their own named streams from that
// root so that adding a random draw in one subsystem never perturbs the
// sequence observed by another. Derivation is stateless: deriving the same
// label twice yields identical streams regardless of how much state the
// parent has consumed.
package rng

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random stream. It embeds *rand.Rand, so all the
// usual drawing methods (Float64, IntN, Perm, Shuffle, ExpFloat64, ...) are
// available directly.
type RNG struct {
	*rand.Rand
	seed [32]byte
}

// New returns a stream rooted at the given integer seed.
func New(seed uint64) *RNG {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	digest := sha256.Sum256(buf[:])
	return fromDigest(digest)
}

func fromDigest(digest [32]byte) *RNG {
	hi := binary.LittleEndian.Uint64(digest[0:8])
	lo := binary.LittleEndian.Uint64(digest[8:16])
	return &RNG{
		Rand: rand.New(rand.NewPCG(hi, lo)),
		seed: digest,
	}
}

// Derive returns an independent stream identified by label. Derivation
// depends only on the receiver's seed and the label, never on how many
// values have been drawn from the receiver.
func (r *RNG) Derive(label string) *RNG {
	h := sha256.New()
	h.Write(r.seed[:])
	h.Write([]byte(label))
	var digest [32]byte
	h.Sum(digest[:0])
	return fromDigest(digest)
}

// DeriveIndexed returns an independent stream identified by a label and an
// integer index, convenient for per-trial or per-node streams.
func (r *RNG) DeriveIndexed(label string, index int) *RNG {
	h := sha256.New()
	h.Write(r.seed[:])
	h.Write([]byte(label))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(index))
	h.Write(buf[:])
	var digest [32]byte
	h.Sum(digest[:0])
	return fromDigest(digest)
}

// PairJitter returns a deterministic value in [1-amplitude, 1+amplitude]
// keyed by the unordered pair {u, v}. It is used for symmetric per-link
// latency jitter without storing an n-by-n matrix: calling with (u, v) or
// (v, u) yields the same factor, and the factor depends only on the
// receiver's seed.
func (r *RNG) PairJitter(u, v int, amplitude float64) float64 {
	if u > v {
		u, v = v, u
	}
	h := sha256.New()
	h.Write(r.seed[:])
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(u))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(v))
	h.Write(buf[:])
	var digest [32]byte
	h.Sum(digest[:0])
	// Map the first 8 bytes to a uniform float in [0, 1).
	u64 := binary.LittleEndian.Uint64(digest[0:8])
	unit := float64(u64>>11) / (1 << 53)
	return 1 - amplitude + 2*amplitude*unit
}

// PairLogNormal returns a deterministic multiplicative factor keyed by the
// unordered pair {u, v}, distributed LogNormal(−σ²/2, σ) so its mean is 1.
// It models per-link routing inefficiency (Internet latencies deviate
// multiplicatively from clean metric embeddings). Symmetric in (u, v).
func (r *RNG) PairLogNormal(u, v int, sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	if u > v {
		u, v = v, u
	}
	h := sha256.New()
	h.Write(r.seed[:])
	h.Write([]byte("lognormal"))
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(u))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(v))
	h.Write(buf[:])
	var digest [32]byte
	h.Sum(digest[:0])
	u1 := unitFloat(binary.LittleEndian.Uint64(digest[0:8]))
	u2 := unitFloat(binary.LittleEndian.Uint64(digest[8:16]))
	// Box-Muller; clamp u1 away from zero to keep log finite.
	if u1 < 1e-18 {
		u1 = 1e-18
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(sigma*z - sigma*sigma/2)
}

func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Seed exposes the stream's 32-byte seed, primarily for diagnostics.
func (r *RNG) Seed() [32]byte { return r.seed }
