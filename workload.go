package perigee

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/workload"
)

// WorkloadReport is one continuous-time workload run's fork economics:
// blocks mined vs canonical, the stale-block and fork rates, reorg depth,
// and the mining-revenue split. It marshals to JSON.
type WorkloadReport = workload.Report

// WorkloadTrace is a stream of block-production events in nondecreasing
// time order, consumed by RunWorkload. Built-in arrival processes produce
// infinite traces; a replayed trace file is finite.
type WorkloadTrace = workload.Trace

// WorkloadArrival is one block-production event: at simulated time At,
// node Miner finds a block on its current longest-chain tip.
type WorkloadArrival = workload.Arrival

// ArrivalProcess constructs the block-production schedule for a workload
// run: the per-node hash-power vector and the mean block interval in, a
// trace of timed mining events out. PoissonArrivals is the standard
// model; GammaArrivals and WeibullArrivals vary the inter-arrival shape,
// and any custom implementation plugs in via WithWorkload.
type ArrivalProcess interface {
	// Arrivals returns the trace. Implementations must draw all
	// randomness from r so equal seeds replay bit-for-bit.
	Arrivals(power []float64, mean time.Duration, r *Rand) (WorkloadTrace, error)
}

// ArrivalProcessFunc adapts a plain function to the ArrivalProcess
// interface.
type ArrivalProcessFunc func(power []float64, mean time.Duration, r *Rand) (WorkloadTrace, error)

// Arrivals implements ArrivalProcess.
func (f ArrivalProcessFunc) Arrivals(power []float64, mean time.Duration, r *Rand) (WorkloadTrace, error) {
	return f(power, mean, r)
}

// PoissonArrivals is the standard proof-of-work mining model: exponential
// inter-arrival times (a Poisson process, matching difficulty
// retargeting), miners drawn proportionally to hash power. The default
// workload.
func PoissonArrivals() ArrivalProcess {
	return ArrivalProcessFunc(func(power []float64, mean time.Duration, r *Rand) (WorkloadTrace, error) {
		return workload.NewPoisson(r, power, mean)
	})
}

// GammaArrivals is a Gamma(shape) renewal process normalized to the mean
// block interval: shape > 1 is more regular than Poisson, shape < 1
// burstier, shape = 1 recovers the exponential.
func GammaArrivals(shape float64) ArrivalProcess {
	return ArrivalProcessFunc(func(power []float64, mean time.Duration, r *Rand) (WorkloadTrace, error) {
		return workload.NewGamma(r, power, mean, shape)
	})
}

// WeibullArrivals is a Weibull(shape) renewal process normalized to the
// mean block interval; shape < 1 has a heavy tail of long quiet gaps.
func WeibullArrivals(shape float64) ArrivalProcess {
	return ArrivalProcessFunc(func(power []float64, mean time.Duration, r *Rand) (WorkloadTrace, error) {
		return workload.NewWeibull(r, power, mean, shape)
	})
}

// RunWorkload drives the network with a continuous-time blockchain
// workload for the given span of simulated time: miners produce blocks on
// the arrival process's schedule (weighted by hash power), blocks race
// through the simulated network, every node maintains a longest-chain
// first-seen view, and Perigee topology rounds fire on elapsed simulated
// time — every RoundBlocks × block-interval. Blocks mined within one
// another's propagation delay fork the chain; the report prices that in
// stale blocks, fork events, reorgs, and revenue skew.
//
// The workload composes with the network's other options (selector,
// latency, power, adversary); configure it with WithWorkload,
// WithBlockInterval, and WithTraceFile. Each call advances the topology
// from its current state and draws a fresh arrival stream, so runs are
// reproducible per (seed, call index) but successive calls differ.
func (n *Network) RunWorkload(duration time.Duration) (*WorkloadReport, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("perigee: workload duration %v must be positive", duration)
	}
	interval := n.blockInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	var trace WorkloadTrace
	if n.traceFile != "" {
		tf, err := workload.ReadTraceFile(n.traceFile)
		if err != nil {
			return nil, fmt.Errorf("perigee: %w", err)
		}
		if nodes := n.engine.Table().N(); tf.Nodes != nodes {
			return nil, fmt.Errorf("perigee: trace file %s recorded for %d nodes, network has %d", n.traceFile, tf.Nodes, nodes)
		}
		trace = tf.Trace()
	} else {
		proc := n.workloadProc
		if proc == nil {
			proc = PoissonArrivals()
		}
		var err error
		trace, err = proc.Arrivals(n.engine.Power(), interval, n.workloadRand.DeriveIndexed("run", n.workloadRuns))
		if err != nil {
			return nil, fmt.Errorf("perigee: building arrival trace: %w", err)
		}
	}
	n.workloadRuns++
	return workload.Run(workload.Config{
		Engine:        n.engine,
		Trace:         trace,
		Duration:      duration,
		RoundInterval: time.Duration(n.engine.Params().RoundBlocks) * interval,
	})
}
