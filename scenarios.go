package perigee

import (
	"github.com/perigee-net/perigee/internal/experiments"
)

// ScenarioOptions configure a scenario run: network size, trials, rounds,
// seed, worker budget.
type ScenarioOptions = experiments.Options

// ScenarioResult is a completed scenario: per-algorithm series, notes, and
// (for figure5) histograms. See Render for a text report; it also
// marshals to JSON.
type ScenarioResult = experiments.Result

// ExperimentOptions is the former name of ScenarioOptions.
type ExperimentOptions = ScenarioOptions

// ExperimentResult is the former name of ScenarioResult.
type ExperimentResult = ScenarioResult

// ValidationModel selects the per-node validation delay distribution used
// by scenario options; re-exported from the experiment harness.
type ValidationModel = experiments.ValidationModel

// Re-exported validation models for ScenarioOptions.Validation.
const (
	// ValidationFixed gives every node exactly MeanValidation (paper §5).
	ValidationFixed = experiments.ValidationFixed
	// ValidationExponential draws per-node delays from
	// Exponential(MeanValidation).
	ValidationExponential = experiments.ValidationExponential
)

// ScenarioInfo names one registered scenario.
type ScenarioInfo struct {
	// ID identifies the scenario ("figure3a", "churn", ...).
	ID string
	// Brief is a one-line description.
	Brief string
}

// DefaultScenarioOptions mirrors the paper's evaluation scale (1000
// nodes, 3 trials).
func DefaultScenarioOptions() ScenarioOptions { return experiments.DefaultOptions() }

// QuickScenarioOptions is a scaled-down configuration (300 nodes, 1
// trial) where the paper's qualitative results still hold.
func QuickScenarioOptions() ScenarioOptions { return experiments.ShortOptions() }

// DefaultExperimentOptions is the former name of DefaultScenarioOptions.
func DefaultExperimentOptions() ScenarioOptions { return DefaultScenarioOptions() }

// QuickExperimentOptions is the former name of QuickScenarioOptions.
func QuickExperimentOptions() ScenarioOptions { return QuickScenarioOptions() }

// Scenarios lists every registered scenario — the paper's figures and
// theorems, the §6 extension studies, the ablation sweeps, and anything
// added through RegisterScenario — sorted by ID.
func Scenarios() []ScenarioInfo {
	scs := experiments.Scenarios()
	out := make([]ScenarioInfo, len(scs))
	for i, s := range scs {
		out[i] = ScenarioInfo{ID: s.ID, Brief: s.Brief}
	}
	return out
}

// RunScenario executes a registered scenario by ID at the given scale.
func RunScenario(id string, opt ScenarioOptions) (*ScenarioResult, error) {
	return experiments.Run(id, opt)
}

// RegisterScenario adds a scenario to the shared registry, making it
// runnable through RunScenario and visible to cmd/perigee-sim. It fails on
// an empty ID, a nil runner, or an ID collision.
func RegisterScenario(id, brief string, run func(ScenarioOptions) (*ScenarioResult, error)) error {
	return experiments.Register(experiments.Scenario{ID: id, Brief: brief, Run: run})
}

// Experiments lists the registered scenario IDs.
//
// Deprecated: use Scenarios, which also carries descriptions.
func Experiments() []string { return experiments.IDs() }

// RunExperiment is the former name of RunScenario.
func RunExperiment(id string, opt ScenarioOptions) (*ScenarioResult, error) {
	return RunScenario(id, opt)
}
