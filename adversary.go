package perigee

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee/internal/adversary"
)

// Adversary is a pluggable attack strategy (see the internal/adversary
// package documentation for the full model and a worked custom-strategy
// example). A strategy binds to one run through Setup, rewriting the
// behavior tables of the nodes it controls and returning the run's live
// hooks; the same value runs unmodified in the simulator
// (WithAdversary), the registered adversary-* scenarios, and — for its
// behavioral hooks — a live TCP node (node.WithAdversary).
//
// All hook signatures use only basic types plus the aliases below, so
// custom strategies need no internal imports:
//
//	type sleeper struct{}
//
//	func (sleeper) Name() string  { return "sleeper" }
//	func (sleeper) Brief() string { return "honest until round 5, then withholds" }
//
//	func (sleeper) Setup(env *perigee.AdversaryEnv, net *perigee.AdversaryNetwork) (perigee.AdversaryAgent, error) {
//	    return perigee.AdversaryAgent{
//	        AfterRound: func(ctl perigee.AdversaryControl, round int) error {
//	            if round == 5 {
//	                for _, a := range env.Adversaries {
//	                    net.Silent[a] = true
//	                }
//	            }
//	            return nil
//	        },
//	    }, nil
//	}
type Adversary = adversary.Strategy

// AdversaryEnv is the immutable context handed to a strategy's Setup:
// network size, the compromised node set, and a private deterministic
// random stream.
type AdversaryEnv = adversary.Env

// AdversaryNetwork is the mutable behavior surface of one adversarial
// run: per-node validation delays, free-riding and withholding tables,
// protocol-deviation marks, and a tamperable latency handle.
type AdversaryNetwork = adversary.Network

// AdversaryAgent is one run's live adversary hooks: observation
// tampering (offset matrices use Censored for blocks a neighbor never
// delivered) and the per-round action.
type AdversaryAgent = adversary.Agent

// AdversaryControl is the topology-mutation surface handed to an agent's
// per-round action.
type AdversaryControl = adversary.Control

// MutableLatency is a latency model whose delays a strategy may
// transform mid-run (severed or inflated links).
type MutableLatency = adversary.MutableLatency

// LatencyLiarAdversary returns the timestamp-manipulation strategy:
// compromised nodes delay every relay by withhold while every victim's
// observed offset from them is multiplied by lieFactor in [0, 1) before
// scoring. The paper's defense is that the lie is bounded — a
// sufficiently slow liar still scores worse than honest neighbors.
func LatencyLiarAdversary(lieFactor float64, withhold time.Duration) Adversary {
	return adversary.NewLatencyLiar(lieFactor, withhold)
}

// WithholdingRelayAdversary returns the graded free-riding strategy: a
// neverFrac share of the compromised nodes never relay (generalizing the
// Silent flag); the rest relay after an extra delay.
func WithholdingRelayAdversary(delay time.Duration, neverFrac float64) Adversary {
	return adversary.NewWithholdingRelay(delay, neverFrac)
}

// SybilFloodAdversary returns the connection-exhaustion strategy: silent
// compromised identities dial up to dialsPerRound fresh honest victims
// after every round, eating the network's incoming capacity.
func SybilFloodAdversary(dialsPerRound int) Adversary {
	return adversary.NewSybilFlood(dialsPerRound)
}

// EclipseBiasAdversary returns the neighborhood-capture strategy:
// compromised nodes validate instantly, earning over-representation in
// honest neighbor sets. attackRound 0 keeps them "honestly fast"
// forever; attackRound r > 0 flips them silent after round r.
func EclipseBiasAdversary(attackRound int) Adversary {
	return adversary.NewEclipseBias(attackRound)
}

// RegionalPartitionAdversary returns the infrastructure-level strategy:
// after round activateRound, every link crossing one of groups
// contiguous index-group boundaries has its latency multiplied by factor.
func RegionalPartitionAdversary(groups, activateRound int, factor float64) Adversary {
	return adversary.NewRegionalPartition(groups, activateRound, factor)
}

// Adversaries lists one default-parameter instance of every built-in
// strategy.
func Adversaries() []Adversary { return adversary.Builtins() }

// WithAdversary installs an attack strategy over a fraction of the
// network: a uniform random fraction-share of the nodes (drawn from the
// network seed) is handed to the strategy, whose Setup rewrites their
// behavior before the first round and whose agent hooks run while the
// protocol does. The strategy composes with the other options — the
// selector still drives every honest node's decisions, observers still
// see every round, and any WithDynamics hook runs before the adversary
// acts each round.
func WithAdversary(a Adversary, fraction float64) Option {
	return func(s *settings) error {
		if a == nil {
			return fmt.Errorf("perigee: nil adversary strategy")
		}
		if fraction < 0 || fraction >= 1 {
			return fmt.Errorf("perigee: adversary fraction %v outside [0, 1)", fraction)
		}
		s.adversary = a
		s.adversaryFrac = fraction
		return nil
	}
}

// AdversaryNodes returns the node indices under adversary control (nil
// when the network was built without WithAdversary). The slice is a
// copy, in the order the adversary set was sampled.
func (n *Network) AdversaryNodes() []int {
	if n.adversaryEnv == nil {
		return nil
	}
	return append([]int(nil), n.adversaryEnv.Adversaries...)
}
