package node

import (
	"fmt"
	"time"

	"github.com/perigee-net/perigee"
	"github.com/perigee-net/perigee/internal/core"
)

// Option configures a live node under construction; see New. The options
// mirror the simulator's root API: the same Selector values and the same
// RoundStats observer payloads work in both environments.
type Option func(*settings) error

// settings accumulates option values before the node is built. Explicit
// zero values are honored: exploreSet records whether the caller chose an
// exploration count, so WithExplore(0) is never clobbered by the default.
type settings struct {
	listen     string
	seed       uint64
	seedSet    bool
	nodeID     uint64
	network    string
	outDegree  int
	maxInbound int
	explore    int
	exploreSet bool
	percentile float64

	scoring     perigee.Scoring
	scoringSet  bool
	selector    perigee.Selector
	roundBlocks int

	observers []Observer
	peerDelay func(remoteID uint64) time.Duration
	mine      time.Duration
	handshake time.Duration
	logf      func(format string, args ...any)
	adversary perigee.Adversary

	faultPlan    perigee.FaultPlan
	bookPath     string
	bookCap      int
	banThreshold float64
	banDuration  time.Duration
	backoffBase  time.Duration
	backoffMax   time.Duration
	dialBudget   int
	idleTimeout  time.Duration
	redialEvery  time.Duration

	refreshEvery   time.Duration
	targetKnown    int
	feelerEvery    time.Duration
	announceFanout int
	obsCap         int
}

func defaultSettings() *settings {
	return &settings{
		network:    "perigee-devnet",
		outDegree:  8,
		maxInbound: 20,
		percentile: 0.9,
	}
}

// WithListen sets the accepting address ("127.0.0.1:0" for an ephemeral
// port). The default is a client-only node that does not listen.
func WithListen(addr string) Option {
	return func(s *settings) error {
		s.listen = addr
		return nil
	}
}

// WithSeed roots the node's local randomness (identity, nonces, address
// shuffles, selector streams). The default is a fresh random seed per
// node, so distinct nodes get distinct identities out of the box; give
// each node its own explicit seed when reproducible behavior matters
// (equal seeds mean equal node IDs, which refuse to interconnect).
func WithSeed(seed uint64) Option {
	return func(s *settings) error {
		s.seed = seed
		s.seedSet = true
		return nil
	}
}

// WithNodeID pins the node's 64-bit identity. The default derives it from
// the seed.
func WithNodeID(id uint64) Option {
	return func(s *settings) error {
		if id == 0 {
			return fmt.Errorf("node: node ID must be non-zero")
		}
		s.nodeID = id
		return nil
	}
}

// WithNetwork sets the network tag anchoring the genesis block; all nodes
// of one network must share it. Default "perigee-devnet".
func WithNetwork(tag string) Option {
	return func(s *settings) error {
		if tag == "" {
			return fmt.Errorf("node: empty network tag")
		}
		s.network = tag
		return nil
	}
}

// WithOutDegree sets the target number of outbound connections the
// Perigee round maintains (paper: 8).
func WithOutDegree(d int) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("node: out-degree %d must be positive", d)
		}
		s.outDegree = d
		return nil
	}
}

// WithMaxInbound caps accepted connections (paper: 20).
func WithMaxInbound(m int) Option {
	return func(s *settings) error {
		if m <= 0 {
			return fmt.Errorf("node: inbound cap %d must be positive", m)
		}
		s.maxInbound = m
		return nil
	}
}

// WithExplore sets the exploration slots per round used by the built-in
// selectors (paper: 2). WithExplore(0) is an honored, explicit request
// for zero exploration. Ignored when WithSelector installs a custom
// policy.
func WithExplore(e int) Option {
	return func(s *settings) error {
		if e < 0 {
			return fmt.Errorf("node: explore count %d must be non-negative", e)
		}
		s.explore = e
		s.exploreSet = true
		return nil
	}
}

// WithPercentile sets the scoring quantile in (0, 1] used by the built-in
// selectors (paper: 0.9). Ignored when WithSelector installs a custom
// policy.
func WithPercentile(p float64) Option {
	return func(s *settings) error {
		if p <= 0 || p > 1 {
			return fmt.Errorf("node: percentile %v outside (0, 1]", p)
		}
		s.percentile = p
		return nil
	}
}

// WithScoring selects a built-in Perigee scoring variant — a thin
// constructor over WithSelector: the corresponding built-in selector is
// installed with the configured explore count and percentile. Default
// ScoringSubset, the paper's preferred rule. Mutually exclusive with
// WithSelector.
func WithScoring(scoring perigee.Scoring) Option {
	return func(s *settings) error {
		switch scoring {
		case perigee.ScoringVanilla, perigee.ScoringUCB, perigee.ScoringSubset:
			s.scoring = scoring
			s.scoringSet = true
			return nil
		default:
			return fmt.Errorf("node: unknown scoring variant %d", int(scoring))
		}
	}
}

// WithSelector installs the neighbor-selection policy driving the node's
// per-round keep/drop/dial decision — the same perigee.Selector values
// (built-in or custom) that drive the simulator via perigee.WithSelector.
// Mutually exclusive with WithScoring.
func WithSelector(sel perigee.Selector) Option {
	return func(s *settings) error {
		if sel == nil {
			return fmt.Errorf("node: nil selector")
		}
		if e, ok := sel.(interface{ SelectorError() error }); ok {
			if err := e.SelectorError(); err != nil {
				return err
			}
		}
		s.selector = sel
		return nil
	}
}

// WithRoundBlocks makes the node run a Perigee round automatically as
// soon as b blocks have been observed since the last round. The default
// is manual operation: rounds run only when Round is called.
func WithRoundBlocks(b int) Option {
	return func(s *settings) error {
		if b <= 0 {
			return fmt.Errorf("node: round blocks %d must be positive", b)
		}
		s.roundBlocks = b
		return nil
	}
}

// WithObserver attaches a streaming round observer; see Observer. May be
// given multiple times — observers run in registration order.
func WithObserver(o Observer) Option {
	return func(s *settings) error {
		if o == nil {
			return fmt.Errorf("node: nil observer")
		}
		s.observers = append(s.observers, o)
		return nil
	}
}

// WithLatencyInjection applies an artificial one-way delay before every
// message sent to the given remote node — latency injection for
// single-machine experiments, e.g. replaying perigee.GeographicLatency
// link delays over real TCP connections.
func WithLatencyInjection(delay func(remoteID uint64) time.Duration) Option {
	return func(s *settings) error {
		if delay == nil {
			return fmt.Errorf("node: nil latency injection")
		}
		s.peerDelay = delay
		return nil
	}
}

// WithMiner mines blocks on a Poisson schedule with the given mean
// interval, starting when the node starts. The default is no mining.
func WithMiner(mean time.Duration) Option {
	return func(s *settings) error {
		if mean <= 0 {
			return fmt.Errorf("node: mining interval %v must be positive", mean)
		}
		s.mine = mean
		return nil
	}
}

// WithAdversary runs this node as one compromised identity of the given
// attack strategy — the same perigee.Adversary values that drive the
// simulator via perigee.WithAdversary. The strategy's Setup is invoked
// for a single-node environment and its behavioral verdict is applied to
// the node: Silent (received blocks are never relayed), RelayDelay
// (relays are withheld before going out), and Frozen (the neighbor-update
// protocol is disabled). Environment-level hooks — observation tampering
// and the per-round topology agent — act on victims and global state a
// single live identity cannot reach, so they apply only in simulation;
// strategies that need a tamperable latency model (RegionalPartition)
// are rejected here.
func WithAdversary(a perigee.Adversary) Option {
	return func(s *settings) error {
		if a == nil {
			return fmt.Errorf("node: nil adversary strategy")
		}
		s.adversary = a
		return nil
	}
}

// WithHandshakeTimeout bounds the version exchange when connecting
// (default 5s).
func WithHandshakeTimeout(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("node: handshake timeout %v must be positive", d)
		}
		s.handshake = d
		return nil
	}
}

// WithFaults injects deterministic connection faults from the plan:
// dials may fail outright, and established connections may be reset,
// stalled, throttled, or made lossy, exactly as the plan's seeded
// verdicts dictate — chaos testing for the resilience layer. The same
// plan with the same seed reproduces the same faults on every run. See
// perigee.MixedFaults and perigee.FaultPlan. The default injects
// nothing.
func WithFaults(plan perigee.FaultPlan) Option {
	return func(s *settings) error {
		if plan == nil {
			return fmt.Errorf("node: nil fault plan")
		}
		s.faultPlan = plan
		return nil
	}
}

// WithAddrBookPath persists the address book — addresses, per-address
// health, and bans — to the given file: loaded when the node is built
// (a missing file is fine) and saved on Stop, so peer reputation
// survives restarts. The default keeps the book in memory only.
func WithAddrBookPath(path string) Option {
	return func(s *settings) error {
		if path == "" {
			return fmt.Errorf("node: empty address book path")
		}
		s.bookPath = path
		return nil
	}
}

// WithAddrBookCap bounds the address book (default 1024). At the cap,
// adding a fresh address evicts the unhealthiest known one — banned
// first, then most-failed, then least recently seen — so address gossip
// from any single peer cannot grow the book without limit.
func WithAddrBookCap(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("node: address book cap %d must be positive", n)
		}
		s.bookCap = n
		return nil
	}
}

// WithBanPolicy tunes peer banning: a peer whose decayed misbehavior
// score — fed by protocol violations such as malformed frames, invalid
// blocks, and handshake abuse — reaches threshold is disconnected and
// banned for d (defaults: 100 points, 10 minutes). Scores halve every
// few minutes, so transient faults heal instead of accumulating into a
// ban.
func WithBanPolicy(threshold float64, d time.Duration) Option {
	return func(s *settings) error {
		if threshold <= 0 {
			return fmt.Errorf("node: ban threshold %v must be positive", threshold)
		}
		if d <= 0 {
			return fmt.Errorf("node: ban duration %v must be positive", d)
		}
		s.banThreshold = threshold
		s.banDuration = d
		return nil
	}
}

// WithDialBackoff tunes dial retry behavior: after each consecutive
// failure an address waits an exponentially growing, jittered interval
// (base doubling up to max) before it is dialable again, and after
// budget consecutive failures it is evicted from the book entirely
// (defaults: 500ms base, 2m cap, budget 8).
func WithDialBackoff(base, max time.Duration, budget int) Option {
	return func(s *settings) error {
		if base <= 0 || max < base {
			return fmt.Errorf("node: dial backoff [%v, %v] must satisfy 0 < base <= max", base, max)
		}
		if budget <= 0 {
			return fmt.Errorf("node: dial failure budget %d must be positive", budget)
		}
		s.backoffBase = base
		s.backoffMax = max
		s.dialBudget = budget
		return nil
	}
}

// WithIdleTimeout bounds silence on every connection (default 90s):
// after one idle interval the peer is probed with a ping, and a second
// silent interval disconnects it — this is what reclaims stalled and
// half-open connections.
func WithIdleTimeout(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("node: idle timeout %v must be positive", d)
		}
		s.idleTimeout = d
		return nil
	}
}

// WithRedialInterval runs a maintenance loop that redials addresses
// from the book whenever the outbound degree has fallen below the
// target — recovery for connections lost to faults between Perigee
// rounds. The default relies on rounds alone to re-dial.
func WithRedialInterval(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("node: redial interval %v must be positive", d)
		}
		s.redialEvery = d
		return nil
	}
}

// WithDiscovery turns on active addr-gossip peer discovery: every refresh
// interval the node asks a couple of random peers for addresses (GETADDR)
// until the book holds targetKnown entries, so a node given a single seed
// address bootstraps the rest of the network on its own. Pass targetKnown
// 0 for the default book target (128). Passive discovery — answering
// GETADDR with rate-limited random samples, validating and admitting
// gossiped addresses, announcing the node's own address on connect — is
// always on and needs no option.
func WithDiscovery(refresh time.Duration, targetKnown int) Option {
	return func(s *settings) error {
		if refresh <= 0 {
			return fmt.Errorf("node: discovery refresh interval %v must be positive", refresh)
		}
		if targetKnown < 0 {
			return fmt.Errorf("node: discovery target %d must be non-negative", targetKnown)
		}
		s.refreshEvery = refresh
		s.targetKnown = targetKnown
		return nil
	}
}

// WithFeelerInterval runs feeler connections: every interval the node
// dials one never-verified address from its book, completes the
// handshake, and disconnects — promoting the entry to dial-verified (or
// evicting it via the failure budget if it was fabricated). Verified
// entries are never displaced by unverified rumor, so feelers keep the
// book anchored in addresses known to be real. The default runs no
// feelers.
func WithFeelerInterval(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("node: feeler interval %v must be positive", d)
		}
		s.feelerEvery = d
		return nil
	}
}

// WithAddrAnnounce sets how many random peers each freshly learned
// address is relayed to (Bitcoin-style addr trickle, default 2). Higher
// fanout spreads addresses faster at the cost of more gossip traffic.
func WithAddrAnnounce(fanout int) Option {
	return func(s *settings) error {
		if fanout <= 0 {
			return fmt.Errorf("node: announce fanout %d must be positive", fanout)
		}
		s.announceFanout = fanout
		return nil
	}
}

// WithObservationCap bounds the block-observation bookkeeping (arrival
// timestamps, request dedup) independently of Perigee rounds, so a node
// that never rounds — a client-only observer — holds memory proportional
// to the cap rather than to uptime (default 4096).
func WithObservationCap(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("node: observation cap %d must be positive", n)
		}
		s.obsCap = n
		return nil
	}
}

// WithLogf directs diagnostic log lines to f. The default discards them.
func WithLogf(f func(format string, args ...any)) Option {
	return func(s *settings) error {
		if f == nil {
			return fmt.Errorf("node: nil log function")
		}
		s.logf = f
		return nil
	}
}

// resolveSelector turns the configured policy into the core selector the
// live driver runs: an explicit Selector wins, a scoring variant builds
// the equivalent built-in with the node's explore count and percentile,
// and the default is nil (the driver's own Subset default).
func (s *settings) resolveSelector() (core.Selector, error) {
	if s.selector != nil {
		if s.scoringSet {
			return nil, fmt.Errorf("node: WithSelector and WithScoring are mutually exclusive")
		}
		return coreSelector(s.selector)
	}
	if !s.scoringSet {
		return nil, nil
	}
	explore := 2
	if s.exploreSet {
		explore = s.explore
	}
	// The same constraint the default (nil-selector) path enforces in the
	// live driver: a rotation policy that explores its whole out-degree
	// churns the full topology every round.
	if s.scoring != perigee.ScoringUCB && explore >= s.outDegree {
		return nil, fmt.Errorf("node: explore %d must be below out-degree %d", explore, s.outDegree)
	}
	var sel perigee.Selector
	switch s.scoring {
	case perigee.ScoringVanilla:
		sel = perigee.VanillaSelector(explore, s.percentile)
	case perigee.ScoringUCB:
		sel = perigee.UCBSelector(s.percentile, 50*time.Millisecond)
	default:
		sel = perigee.SubsetSelector(explore, s.percentile)
	}
	return coreSelector(sel)
}

// coreSelector resolves a public selector for the live driver: built-ins
// unwrap to their core implementation (surfacing construction errors);
// custom selectors are bridged.
func coreSelector(sel perigee.Selector) (core.Selector, error) {
	if b, ok := sel.(interface {
		CoreSelector() core.Selector
		SelectorError() error
	}); ok {
		if err := b.SelectorError(); err != nil {
			return nil, err
		}
		return b.CoreSelector(), nil
	}
	return selectorBridge{inner: sel}, nil
}

// selectorBridge adapts a user-implemented perigee.Selector to the core
// interface the live driver runs.
type selectorBridge struct {
	inner perigee.Selector
}

func (sb selectorBridge) SelectNeighbors(view core.NeighborView) (core.Decision, error) {
	d, err := sb.inner.SelectNeighbors(perigee.NeighborView{
		Node:       view.Node,
		OutDegree:  view.OutDegree,
		Candidates: view.Candidates,
		Observations: perigee.Observations{
			Neighbors: view.Obs.Neighbors,
			Offsets:   view.Obs.Offsets,
		},
		Rand: view.Rand,
	})
	return core.Decision(d), err
}

func (sb selectorBridge) ResetNodeState(node int) {
	if r, ok := sb.inner.(perigee.NodeStateResetter); ok {
		r.ResetNodeState(node)
	}
}
