package node

import (
	"sync"
	"testing"
	"time"

	"github.com/perigee-net/perigee"
)

// startNode builds and starts a listening node, registering cleanup.
func startNode(t *testing.T, opts ...Option) *Node {
	t.Helper()
	n, err := New(append([]Option{WithListen("127.0.0.1:0"), WithNetwork("node-test")}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestQuickstartTwoNodes is the README's live quickstart: two nodes on
// localhost connect, gossip a mined block, and run a Perigee round —
// entirely through the public API.
func TestQuickstartTwoNodes(t *testing.T) {
	a := startNode(t, WithSeed(1))
	b := startNode(t, WithSeed(2))
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	id, err := a.MineBlock([][]byte{[]byte("tx")})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "block at b", 2*time.Second, func() bool { return b.HasBlock(id) })
	if a.Height() != 1 || b.Height() != 1 {
		t.Fatalf("heights %d/%d, want 1/1", a.Height(), b.Height())
	}
	peers := a.Peers()
	if len(peers) != 1 || peers[0].ID != b.ID() || !peers[0].Outbound {
		t.Fatalf("peer list wrong: %+v", peers)
	}
	stats, err := a.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Summary.Round != 1 {
		t.Fatalf("round index %d, want 1", stats.Summary.Round)
	}
	if a.ObservationWindow() != 0 {
		t.Fatal("round did not reset the observation window")
	}
}

// dropSlowest is a custom Selector written purely against the public
// perigee API: it drops the single worst neighbor by median offset. The
// same type runs against the simulator in the customselector example.
type dropSlowest struct{}

func (dropSlowest) SelectNeighbors(view perigee.NeighborView) (perigee.Decision, error) {
	obs := view.Observations
	k := len(obs.Neighbors)
	if k < 2 {
		keep := make([]int, k)
		for i := range keep {
			keep[i] = i
		}
		return perigee.Decision{Keep: keep, Dial: view.OutDegree - k}, nil
	}
	worst, worstScore := -1, time.Duration(-1)
	for i := 0; i < k; i++ {
		var finite []time.Duration
		for _, row := range obs.Offsets {
			if row[i] != perigee.Censored {
				finite = append(finite, row[i])
			}
		}
		var score time.Duration
		if len(finite) == 0 {
			score = perigee.Censored
		} else {
			for _, d := range finite {
				score += d
			}
			score /= time.Duration(len(finite))
		}
		if score > worstScore {
			worst, worstScore = i, score
		}
	}
	var keep []int
	for i := 0; i < k; i++ {
		if i != worst {
			keep = append(keep, i)
		}
	}
	return perigee.Decision{Keep: keep, Drop: []int{worst}, Dial: 1}, nil
}

// TestCustomSelectorLiveTCP is the acceptance check on the live side: a
// custom Selector implemented outside the library drives a real TCP node
// via node.WithSelector, evicting the artificially slow relay, and the
// observer pipeline reports the same RoundStats shape the simulator
// emits.
func TestCustomSelectorLiveTCP(t *testing.T) {
	miner := startNode(t, WithSeed(10))
	fast := startNode(t, WithSeed(11))
	slow := startNode(t, WithSeed(12),
		WithLatencyInjection(func(uint64) time.Duration { return 120 * time.Millisecond }))

	var mu sync.Mutex
	var observed []perigee.RoundStats
	hub := startNode(t, WithSeed(13),
		WithOutDegree(2),
		WithSelector(dropSlowest{}),
		WithObserver(ObserverFunc(func(n *Node, s perigee.RoundStats) {
			mu.Lock()
			observed = append(observed, s)
			mu.Unlock()
		})),
	)
	for _, relay := range []*Node{fast, slow} {
		if err := miner.Connect(relay.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := hub.Connect(relay.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := miner.MineBlock([][]byte{{byte(i)}}); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "hub receives block", 3*time.Second, func() bool {
			return hub.Height() >= uint64(i+1)
		})
	}
	// Let the slow relay's delayed announcements land so the observation
	// matrix is complete.
	time.Sleep(250 * time.Millisecond)

	stats, err := hub.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Summary.ConnectionsDropped != 1 {
		t.Fatalf("custom selector dropped %d peers, want 1", stats.Summary.ConnectionsDropped)
	}
	if len(stats.DroppedEdges) != 1 || stats.DroppedEdges[0][1] != int(slow.ID()) {
		t.Fatalf("dropped edges %v, want the slow relay %d", stats.DroppedEdges, int(slow.ID()))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(observed) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(observed))
	}
	if observed[0].Summary != stats.Summary {
		t.Fatalf("observer summary %+v differs from Round result %+v", observed[0].Summary, stats.Summary)
	}
}

// TestAutoRound: WithRoundBlocks makes the node adapt on its own once the
// observation window fills.
func TestAutoRound(t *testing.T) {
	miner := startNode(t, WithSeed(20))
	relay := startNode(t, WithSeed(21))

	rounds := make(chan perigee.RoundStats, 4)
	hub := startNode(t, WithSeed(22),
		WithRoundBlocks(3),
		WithObserver(ObserverFunc(func(n *Node, s perigee.RoundStats) { rounds <- s })),
	)
	if err := miner.Connect(relay.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := hub.Connect(relay.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := miner.MineBlock(nil); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case s := <-rounds:
		if s.Summary.Round != 1 {
			t.Fatalf("automatic round index %d, want 1", s.Summary.Round)
		}
		if s.Summary.Blocks < 3 {
			t.Fatalf("automatic round scored %d blocks, want >= 3", s.Summary.Blocks)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("automatic round never fired")
	}
}

// TestMiner: WithMiner produces blocks on its own schedule.
func TestMiner(t *testing.T) {
	miner := startNode(t, WithSeed(30), WithMiner(10*time.Millisecond))
	peer := startNode(t, WithSeed(31))
	if err := peer.Connect(miner.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mined blocks to propagate", 5*time.Second, func() bool {
		return peer.Height() >= 3
	})
}

func TestOptionValidation(t *testing.T) {
	bad := [][]Option{
		{WithOutDegree(0)},
		{WithMaxInbound(-1)},
		{WithExplore(-1)},
		{WithPercentile(0)},
		{WithPercentile(1.5)},
		{WithNetwork("")},
		{WithNodeID(0)},
		{WithRoundBlocks(0)},
		{WithMiner(0)},
		{WithSelector(nil)},
		{WithSelector(perigee.SubsetSelector(-1, 0.9))},
		{WithScoring(perigee.Scoring(9))},
		{WithSelector(perigee.SubsetSelector(1, 0.9)), WithScoring(perigee.ScoringSubset)},
		// The built-in scoring path enforces the same explore < out-degree
		// constraint as the default path.
		{WithScoring(perigee.ScoringSubset), WithExplore(8)},
		{WithScoring(perigee.ScoringVanilla), WithOutDegree(3), WithExplore(3)},
		{WithFaults(nil)},
		{WithAddrBookPath("")},
		{WithAddrBookCap(0)},
		{WithBanPolicy(0, time.Minute)},
		{WithBanPolicy(50, 0)},
		{WithDialBackoff(0, time.Second, 4)},
		{WithDialBackoff(time.Second, time.Millisecond, 4)},
		{WithDialBackoff(time.Second, time.Minute, 0)},
		{WithIdleTimeout(0)},
		{WithRedialInterval(-time.Second)},
		{nil},
	}
	for i, opts := range bad {
		if _, err := New(opts...); err == nil {
			t.Fatalf("invalid option set %d accepted", i)
		}
	}
	// WithExplore(0) is honored, not clobbered: the node freezes its
	// topology (no drops possible with retain == out-degree).
	if _, err := New(WithExplore(0)); err != nil {
		t.Fatalf("explicit zero explore rejected: %v", err)
	}
}

// TestDefaultSeedsAreDistinct: nodes built without WithSeed must get
// distinct identities, or they could never interconnect.
func TestDefaultSeedsAreDistinct(t *testing.T) {
	a := startNode(t)
	b := startNode(t)
	if a.ID() == b.ID() {
		t.Fatalf("two default nodes share identity %016x", a.ID())
	}
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatalf("default-configured nodes cannot connect: %v", err)
	}
}
