package node

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/perigee-net/perigee"
)

// TestResilienceOptionsEndToEnd drives the public resilience surface: a
// small cluster under perigee.MixedFaults keeps gossiping, the fault
// counters are visible through Resilience, and a node with a 100%
// dial-failure plan records every failure.
func TestResilienceOptionsEndToEnd(t *testing.T) {
	plan := perigee.MixedFaults(17, 0.3)
	var nodes []*Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, startNode(t,
			WithSeed(uint64(100+i)),
			WithFaults(plan),
			WithIdleTimeout(300*time.Millisecond),
			WithRedialInterval(100*time.Millisecond),
			WithAddrBookCap(64),
		))
	}
	for i, n := range nodes {
		n.AddAddresses(nodes[(i+1)%4].Addr(), nodes[(i+2)%4].Addr(), nodes[(i+3)%4].Addr())
		for k := 1; k <= 2; k++ {
			_ = n.Connect(nodes[(i+k)%4].Addr()) // injected failures expected
		}
	}
	id, err := nodes[0].MineBlock([][]byte{[]byte("chaos")})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "block reaches all nodes under faults", 10*time.Second, func() bool {
		for _, n := range nodes {
			if !n.HasBlock(id) {
				return false
			}
		}
		return true
	})
	injected := 0
	for _, n := range nodes {
		r := n.Resilience()
		injected += r.FaultedConns + r.FaultedDials
	}
	if injected == 0 {
		t.Fatal("30% fault plan injected nothing across 4 nodes")
	}
}

// TestDialFaultsRecorded: a 100% dial-failure plan surfaces through the
// public API as failed Connects and resilience counters.
func TestDialFaultsRecorded(t *testing.T) {
	target := startNode(t, WithSeed(200))
	n, err := New(
		WithNetwork("node-test"),
		WithSeed(201),
		WithFaults(perigee.DialFaults(3, 1)),
		WithDialBackoff(50*time.Millisecond, time.Second, 4),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	for i := 0; i < 3; i++ {
		if err := n.Connect(target.Addr()); err == nil {
			t.Fatal("dial succeeded under a 100% dial-failure plan")
		}
	}
	r := n.Resilience()
	if r.FaultedDials != 3 || r.DialFailures != 3 {
		t.Fatalf("stats %+v, want 3 faulted dials and 3 recorded failures", r)
	}
}

// TestAddrBookPersistsAcrossRestart: WithAddrBookPath carries addresses
// from one node lifetime to the next.
func TestAddrBookPersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.json")
	peer := startNode(t, WithSeed(210))
	first, err := New(WithNetwork("node-test"), WithSeed(211), WithAddrBookPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	first.AddAddresses(peer.Addr())
	first.Stop()

	second, err := New(WithNetwork("node-test"), WithSeed(211), WithAddrBookPath(path))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(second.Stop)
	if second.KnownAddresses() != 1 {
		t.Fatalf("restarted node knows %d addresses, want 1", second.KnownAddresses())
	}
	if err := second.Connect(peer.Addr()); err != nil {
		t.Fatalf("dialing persisted address: %v", err)
	}
}

// TestBannedPeersSurface: ErrStopped still round-trips and BannedPeers
// starts empty — the public view of the blacklist.
func TestBannedPeersSurface(t *testing.T) {
	n := startNode(t, WithSeed(220))
	if got := n.BannedPeers(); len(got) != 0 {
		t.Fatalf("fresh node has banned peers: %v", got)
	}
	n.Stop()
	if err := n.Connect("127.0.0.1:9"); !errors.Is(err, ErrStopped) {
		t.Fatalf("Connect on stopped node: %v, want ErrStopped", err)
	}
}
