// Package node runs a live Perigee peer over real TCP sockets behind the
// same composable option surface as the simulator: the decision loop is a
// perigee.Selector, telemetry is the same perigee.RoundStats stream the
// simulator's observers receive, and every knob is a functional option.
// One policy and one observer pipeline drive both environments — write a
// Selector once, evaluate it with perigee.New, deploy it with node.New.
//
// A minimal adapting node:
//
//	n, err := node.New(
//	    node.WithListen("127.0.0.1:0"),
//	    node.WithSeed(7),
//	    node.WithRoundBlocks(20), // adapt automatically every 20 blocks
//	    node.WithObserver(node.ObserverFunc(func(n *node.Node, s perigee.RoundStats) {
//	        log.Printf("round %d: dropped %d peers", s.Summary.Round, s.Summary.ConnectionsDropped)
//	    })),
//	)
//	...
//	if err := n.Start(); err != nil { ... }
//	defer n.Stop()
//	_ = n.Connect(seedAddr)
//
// The node gossips blocks with the Bitcoin-style INV/GETDATA/BLOCK
// protocol, measures real arrival timestamps, and feeds them to its
// Selector — no latency oracle involved. Scoring defaults to the paper's
// Perigee-Subset rule; plug in any other policy with WithSelector.
package node

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/perigee-net/perigee"
	"github.com/perigee-net/perigee/internal/chain"
	"github.com/perigee-net/perigee/internal/p2p"
	"github.com/perigee-net/perigee/internal/rng"
)

// BlockID identifies a block by its header's SHA-256 digest.
type BlockID [32]byte

// String renders the first bytes of the ID for logs.
func (id BlockID) String() string { return chain.Hash(id).String() }

// PeerInfo describes one live connection.
type PeerInfo struct {
	// ID is the remote node's identity.
	ID uint64
	// Outbound reports whether we dialed the connection; only outbound
	// peers are scored and rotated by the Perigee round.
	Outbound bool
	// ListenAddr is the remote's accepting address, if known.
	ListenAddr string
}

// Observer receives streaming telemetry after every completed Perigee
// round — manual (Round) and automatic (WithRoundBlocks) alike. The
// payload is the same perigee.RoundStats the simulator's observers
// receive; edge endpoints are the driver's integer node keys (the
// two's-complement view of the 64-bit node IDs). ObserveRound runs
// synchronously at the end of the round; implementations must not block
// for long.
type Observer interface {
	ObserveRound(n *Node, stats perigee.RoundStats)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(n *Node, stats perigee.RoundStats)

// ObserveRound implements Observer.
func (f ObserverFunc) ObserveRound(n *Node, stats perigee.RoundStats) { f(n, stats) }

// ErrStopped is returned by operations on a stopped node.
var ErrStopped = p2p.ErrStopped

// Node is a live Perigee peer: it gossips blocks over TCP and re-selects
// its outbound neighbors from measured arrival times by driving its
// Selector. Build one with New, then Start it.
type Node struct {
	p         *p2p.Node
	observers []Observer

	mineMean time.Duration
	mineRand *rng.RNG

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New validates the options and builds a live node (not yet started).
// Every unset option takes the paper's evaluation default: out-degree 8,
// inbound cap 20, Subset scoring with 2 exploration slots at the 0.9
// percentile, manual rounds, no mining, no listening.
func New(opts ...Option) (*Node, error) {
	s := defaultSettings()
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("node: nil option")
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	selector, err := s.resolveSelector()
	if err != nil {
		return nil, err
	}
	if !s.seedSet {
		// Distinct nodes need distinct identities: the node ID derives
		// from the seed, and equal IDs refuse to interconnect.
		s.seed = rand.Uint64()
	}
	explore := 0 // zero-valued Config means the default
	if s.exploreSet {
		explore = s.explore
		if explore == 0 {
			explore = p2p.ExploreNone
		}
	}
	n := &Node{
		observers: s.observers,
		mineMean:  s.mine,
		mineRand:  rng.New(s.seed).Derive("mining"),
		stopCh:    make(chan struct{}),
	}
	cfg := p2p.Config{
		NodeID:           s.nodeID,
		Seed:             s.seed,
		ListenAddr:       s.listen,
		MaxInbound:       s.maxInbound,
		OutDegree:        s.outDegree,
		Explore:          explore,
		Percentile:       s.percentile,
		Selector:         selector,
		RoundBlocks:      s.roundBlocks,
		OnRound:          n.dispatchRound,
		Genesis:          chain.NewGenesis(s.network),
		PeerDelay:        s.peerDelay,
		HandshakeTimeout: s.handshake,
		Faults:           s.faultPlan,
		AddrBookPath:     s.bookPath,
		ReadIdleTimeout:  s.idleTimeout,
		RedialInterval:   s.redialEvery,
		ObservationCap:   s.obsCap,
		Discovery: p2p.DiscoveryConfig{
			RefreshInterval: s.refreshEvery,
			TargetKnown:     s.targetKnown,
			FeelerInterval:  s.feelerEvery,
			AnnounceFanout:  s.announceFanout,
		},
		Book: p2p.BookConfig{
			Cap:          s.bookCap,
			BanThreshold: s.banThreshold,
			BanDuration:  s.banDuration,
			BackoffBase:  s.backoffBase,
			BackoffMax:   s.backoffMax,
			DialBudget:   s.dialBudget,
		},
		Logf: s.logf,
	}
	if s.adversary != nil {
		if err := applyAdversary(&cfg, s.adversary, s.seed); err != nil {
			return nil, err
		}
	}
	inner, err := p2p.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	n.p = inner
	return n, nil
}

// applyAdversary binds an attack strategy to this single live identity:
// Setup runs over a one-node environment (the node is adversary index 0)
// and the resulting behavior tables map onto the live driver — Silent,
// RelayDelay, and Frozen. Environment-level hooks (observation tampering,
// the per-round topology agent) are simulation-only and ignored here;
// strategies demanding a tamperable latency model fail Setup, surfacing
// the mismatch at build time.
func applyAdversary(cfg *p2p.Config, a perigee.Adversary, seed uint64) error {
	env := &perigee.AdversaryEnv{
		N:           1,
		Adversaries: []int{0},
		IsAdversary: []bool{true},
		Rand:        rng.New(seed).Derive("adversary"),
	}
	behavior := &perigee.AdversaryNetwork{
		Forward:    make([]time.Duration, 1),
		Silent:     make([]bool, 1),
		RelayDelay: make([]time.Duration, 1),
		Frozen:     make([]bool, 1),
	}
	if _, err := a.Setup(env, behavior); err != nil {
		return fmt.Errorf("node: adversary %s: %w", a.Name(), err)
	}
	cfg.SilentRelay = behavior.Silent[0]
	cfg.RelayDelay = behavior.RelayDelay[0]
	cfg.Frozen = behavior.Frozen[0]
	return nil
}

// Start begins listening (when configured), accepting connections, and
// mining (when configured).
func (n *Node) Start() error {
	if err := n.p.Start(); err != nil {
		return err
	}
	if n.mineMean > 0 {
		n.wg.Add(1)
		go n.mineLoop()
	}
	return nil
}

// mineLoop mines blocks on a Poisson schedule until the node stops.
func (n *Node) mineLoop() {
	defer n.wg.Done()
	timer := time.NewTimer(chain.NextMiningInterval(n.mineRand, n.mineMean))
	defer timer.Stop()
	for seq := 0; ; seq++ {
		select {
		case <-n.stopCh:
			return
		case <-timer.C:
			payload := fmt.Appendf(nil, "coinbase-%016x-%d", n.ID(), seq)
			if _, err := n.MineBlock([][]byte{payload}); err != nil {
				if errors.Is(err, ErrStopped) {
					return
				}
			}
			timer.Reset(chain.NextMiningInterval(n.mineRand, n.mineMean))
		}
	}
}

// Stop closes the listener and all connections, stops the miner, and
// waits for every goroutine to exit. Safe to call more than once.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.p.Stop()
	n.wg.Wait()
}

// ID returns the node's 64-bit identity.
func (n *Node) ID() uint64 { return n.p.ID() }

// Addr returns the actual listening address, or "" when not listening.
func (n *Node) Addr() string { return n.p.Addr() }

// Connect dials and handshakes an outbound peer.
func (n *Node) Connect(addr string) error { return n.p.Connect(addr) }

// AddAddresses seeds the node's address book — the candidate pool the
// Perigee round dials during exploration.
func (n *Node) AddAddresses(addrs ...string) { n.p.Book().Add(addrs...) }

// KnownAddresses returns the address-book size.
func (n *Node) KnownAddresses() int { return n.p.Book().Len() }

// Peers lists live connections sorted by ID.
func (n *Node) Peers() []PeerInfo {
	inner := n.p.Peers()
	out := make([]PeerInfo, len(inner))
	for i, p := range inner {
		out[i] = PeerInfo{ID: p.ID, Outbound: p.Direction == p2p.Outbound, ListenAddr: p.ListenAddr}
	}
	return out
}

// OutboundCount returns the number of live outbound connections.
func (n *Node) OutboundCount() int { return n.p.OutboundCount() }

// ResilienceStats counts the node's defensive actions: shed accepts,
// recorded dial failures, injected faults, bans, slow-consumer
// disconnects, and maintenance redials.
type ResilienceStats = p2p.ResilienceStats

// Resilience returns a snapshot of the node's defensive-action counters.
func (n *Node) Resilience() ResilienceStats { return n.p.Resilience() }

// DiscoveryStats counts the node's addr-gossip activity: self-announces,
// trickle relays, refresh requests, addresses learned and rejected,
// throttled GETADDRs, and feeler verifications.
type DiscoveryStats = p2p.DiscoveryStats

// Discovery returns a snapshot of the node's addr-gossip counters.
func (n *Node) Discovery() DiscoveryStats { return n.p.Discovery() }

// VerifiedAddresses returns how many book entries are dial-verified —
// addresses the node has successfully connected to at least once, as
// opposed to unconfirmed gossip rumor.
func (n *Node) VerifiedAddresses() int { return n.p.Book().VerifiedCount() }

// BannedPeers lists the node IDs currently banned for misbehavior.
func (n *Node) BannedPeers() []uint64 { return n.p.Book().BannedIDs() }

// MineBlock extends the node's tip with a new block carrying the given
// transaction payloads and announces it to all peers.
func (n *Node) MineBlock(txs [][]byte) (BlockID, error) {
	blk, err := n.p.MineBlock(txs)
	if err != nil {
		return BlockID{}, err
	}
	return BlockID(blk.Header.Hash()), nil
}

// HasBlock reports whether the node's store holds the block.
func (n *Node) HasBlock(id BlockID) bool { return n.p.Store().Has(chain.Hash(id)) }

// Height returns the node's chain tip height.
func (n *Node) Height() uint64 { return n.p.Store().Height() }

// ObservationWindow returns the number of blocks observed since the last
// Perigee round — the input size of the next decision.
func (n *Node) ObservationWindow() int { return n.p.ObservationWindow() }

// Round runs one Perigee round immediately: the Selector scores the
// arrival timestamps observed since the last round, dropped peers are
// disconnected, and the dial budget is spent on fresh addresses from the
// book. Observers fire before Round returns. With WithRoundBlocks set,
// rounds also trigger automatically; manual rounds remain available.
func (n *Node) Round() (perigee.RoundStats, error) {
	rep, err := n.p.PerigeeRound()
	if err != nil {
		return perigee.RoundStats{}, err
	}
	return n.roundStats(rep), nil
}

// dispatchRound fans a completed round out to the observers, each with
// its own edge-list copies.
func (n *Node) dispatchRound(rep p2p.RoundReport) {
	for _, o := range n.observers {
		o.ObserveRound(n, n.roundStats(rep))
	}
}

// roundStats converts a live round report into the simulator's telemetry
// shape: edges run from this node's key to the affected peer's key.
func (n *Node) roundStats(rep p2p.RoundReport) perigee.RoundStats {
	self := int(n.ID())
	stats := perigee.RoundStats{
		Summary: perigee.RoundSummary{
			Round:              rep.Round,
			Blocks:             rep.BlocksScored,
			ConnectionsDropped: len(rep.Dropped),
			ConnectionsAdded:   len(rep.Added),
		},
	}
	for _, id := range rep.Dropped {
		stats.DroppedEdges = append(stats.DroppedEdges, [2]int{self, int(id)})
	}
	for _, id := range rep.Added {
		stats.AddedEdges = append(stats.AddedEdges, [2]int{self, int(id)})
	}
	return stats
}
