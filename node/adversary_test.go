package node

import (
	"testing"
	"time"

	"github.com/perigee-net/perigee"
)

// TestAdversarySilentRelayLive runs a withholding (never-forward) node as
// the middle hop of a three-node line: the block reaches the adversary
// but never the node behind it — the live form of the simulator's Silent
// semantics, driven by the same strategy value.
func TestAdversarySilentRelayLive(t *testing.T) {
	miner := startNode(t, WithSeed(1))
	adv := startNode(t, WithSeed(2),
		WithAdversary(perigee.WithholdingRelayAdversary(0, 1))) // neverFrac 1: silent
	victim := startNode(t, WithSeed(3))

	if err := adv.Connect(miner.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := victim.Connect(adv.Addr()); err != nil {
		t.Fatal(err)
	}
	id, err := miner.MineBlock([][]byte{[]byte("tx")})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "block at adversary", 2*time.Second, func() bool { return adv.HasBlock(id) })
	time.Sleep(300 * time.Millisecond)
	if victim.HasBlock(id) {
		t.Fatal("silent adversary relayed the block")
	}

	// A silent source still announces its own blocks.
	own, err := adv.MineBlock([][]byte{[]byte("own")})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "adversary's own block at victim", 2*time.Second, func() bool { return victim.HasBlock(own) })
}

// TestAdversaryWithholdingDelayLive runs a delayed-forwarding node in the
// middle of the line: the block arrives behind it, but only after the
// withholding delay.
func TestAdversaryWithholdingDelayLive(t *testing.T) {
	const withhold = 600 * time.Millisecond
	miner := startNode(t, WithSeed(4))
	adv := startNode(t, WithSeed(5),
		WithAdversary(perigee.WithholdingRelayAdversary(withhold, 0)))
	victim := startNode(t, WithSeed(6))

	if err := adv.Connect(miner.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := victim.Connect(adv.Addr()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	id, err := miner.MineBlock([][]byte{[]byte("tx")})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "block at adversary", 2*time.Second, func() bool { return adv.HasBlock(id) })
	if victim.HasBlock(id) && time.Since(start) < withhold/2 {
		t.Fatal("withheld block relayed too early")
	}
	waitFor(t, "withheld block at victim", 5*time.Second, func() bool { return victim.HasBlock(id) })
	if elapsed := time.Since(start); elapsed < withhold {
		t.Fatalf("block arrived after %v, before the %v withhold", elapsed, withhold)
	}
}

// TestAdversaryFrozenSkipsRounds: a frozen (sybil-flood) identity reports
// rounds but never drops or dials.
func TestAdversaryFrozenSkipsRounds(t *testing.T) {
	adv := startNode(t, WithSeed(7),
		WithAdversary(perigee.SybilFloodAdversary(4)))
	peer := startNode(t, WithSeed(8))
	if err := adv.Connect(peer.Addr()); err != nil {
		t.Fatal(err)
	}
	stats, err := adv.Round()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Summary.ConnectionsDropped != 0 || stats.Summary.ConnectionsAdded != 0 {
		t.Fatalf("frozen node churned connections: %+v", stats.Summary)
	}
	if adv.OutboundCount() != 1 {
		t.Fatalf("outbound count %d, want 1", adv.OutboundCount())
	}
}

// TestAdversaryRejectsLatencyStrategies: strategies that need a
// tamperable latency model cannot bind to a live node.
func TestAdversaryRejectsLatencyStrategies(t *testing.T) {
	_, err := New(WithAdversary(perigee.RegionalPartitionAdversary(2, 1, 4)))
	if err == nil {
		t.Fatal("partition strategy bound to a live node")
	}
}
