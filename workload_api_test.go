package perigee

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"github.com/perigee-net/perigee/internal/rng"
	"github.com/perigee-net/perigee/internal/workload"
)

func TestRunWorkloadBasic(t *testing.T) {
	net, err := New(60, WithSeed(5), WithRoundBlocks(20))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.RunWorkload(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 60 {
		t.Fatalf("report covers %d nodes, want 60", rep.Nodes)
	}
	// 20 blocks × the default 2s interval = 40s per topology round.
	if rep.Rounds != 3 {
		t.Fatalf("got %d topology rounds, want 3", rep.Rounds)
	}
	if rep.BlocksMined == 0 {
		t.Fatal("no blocks mined in two minutes")
	}
	if rep.CanonicalBlocks+rep.StaleBlocks != rep.BlocksMined {
		t.Fatalf("accounting violated: %+v", rep)
	}
	total := 0
	for _, r := range rep.Revenue {
		total += r
	}
	if total != rep.CanonicalBlocks {
		t.Fatalf("revenue sums to %d, want %d canonical blocks", total, rep.CanonicalBlocks)
	}
	if net.Rounds() != rep.Rounds {
		t.Fatalf("network advanced %d rounds, report says %d", net.Rounds(), rep.Rounds)
	}
}

// Successive RunWorkload calls draw fresh arrival streams; equal seeds
// still reproduce the whole sequence.
func TestRunWorkloadSequenceDeterministic(t *testing.T) {
	run := func() []*WorkloadReport {
		net, err := New(60, WithSeed(9), WithRoundBlocks(20), WithBlockInterval(time.Second))
		if err != nil {
			t.Fatal(err)
		}
		var reps []*WorkloadReport
		for i := 0; i < 2; i++ {
			rep, err := net.RunWorkload(time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, rep)
		}
		return reps
	}
	a, b := run(), run()
	for i := range a {
		ja, _ := json.Marshal(a[i])
		jb, _ := json.Marshal(b[i])
		if !bytes.Equal(ja, jb) {
			t.Fatalf("call %d differs across identical networks:\n%s\n%s", i, ja, jb)
		}
	}
	j0, _ := json.Marshal(a[0])
	j1, _ := json.Marshal(a[1])
	if bytes.Equal(j0, j1) {
		t.Fatal("successive workload calls replayed the identical arrival stream")
	}
}

func TestRunWorkloadProcessesAndTraceReplay(t *testing.T) {
	net, err := New(60, WithSeed(3), WithRoundBlocks(20),
		WithWorkload(GammaArrivals(2)), WithBlockInterval(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RunWorkload(time.Minute); err != nil {
		t.Fatal(err)
	}

	// Record a trace file, then replay it through two identically seeded
	// networks: byte-equal reports.
	power := make([]float64, 60)
	for i := range power {
		power[i] = 1.0 / 60
	}
	gen, err := workload.NewPoisson(rng.New(77), power, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := workload.Materialize(gen, time.Minute, 60)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tf.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	replay := func() []byte {
		net, err := New(60, WithSeed(3), WithRoundBlocks(20),
			WithBlockInterval(time.Second), WithTraceFile(path))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := net.RunWorkload(time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if a, b := replay(), replay(); !bytes.Equal(a, b) {
		t.Fatalf("trace replay not byte-equal:\n%s\n%s", a, b)
	}
}

func TestRunWorkloadValidation(t *testing.T) {
	if _, err := New(60, WithWorkload(nil)); err == nil {
		t.Fatal("nil arrival process accepted")
	}
	if _, err := New(60, WithBlockInterval(0)); err == nil {
		t.Fatal("zero block interval accepted")
	}
	if _, err := New(60, WithTraceFile("")); err == nil {
		t.Fatal("empty trace path accepted")
	}
	net, err := New(60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RunWorkload(0); err == nil {
		t.Fatal("zero duration accepted")
	}

	// A trace recorded for a different network size is rejected.
	power := []float64{0.5, 0.5}
	gen, err := workload.NewPoisson(rng.New(1), power, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := workload.Materialize(gen, 10*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "small.json")
	if err := tf.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	mismatched, err := New(60, WithTraceFile(path))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mismatched.RunWorkload(time.Minute); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	missing, err := New(60, WithTraceFile(filepath.Join(t.TempDir(), "absent.json")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := missing.RunWorkload(time.Minute); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
